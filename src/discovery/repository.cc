#include "discovery/repository.h"

#include <algorithm>
#include <filesystem>

#include "dataframe/columnar_io.h"
#include "util/metrics.h"

namespace arda::discovery {

namespace fs = std::filesystem;

namespace {

// True when the cache file can be used instead of the CSV: it exists and
// is at least as new as its source.
bool CacheIsFresh(const fs::path& cache, const fs::path& csv) {
  std::error_code ec;
  fs::file_time_type cache_time = fs::last_write_time(cache, ec);
  if (ec) return false;
  fs::file_time_type csv_time = fs::last_write_time(csv, ec);
  if (ec) return false;
  return cache_time >= csv_time;
}

}  // namespace

Status DataRepository::LoadDirectory(const std::string& data_dir,
                                     const std::string& cache_dir,
                                     const df::CsvOptions& csv_options,
                                     LoadStats* stats) {
  LoadStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  std::error_code ec;
  fs::directory_iterator it(data_dir, ec);
  if (ec) {
    return Status::IoError("cannot open directory: " + data_dir);
  }
  std::vector<fs::path> csvs;
  for (const fs::directory_entry& entry : it) {
    if (entry.path().extension() == ".csv") csvs.push_back(entry.path());
  }
  // Directory iteration order is unspecified; sort so load order (and the
  // order of recorded fallbacks/failures) is deterministic.
  std::sort(csvs.begin(), csvs.end());

  if (!cache_dir.empty()) {
    fs::create_directories(cache_dir, ec);  // best-effort; reads degrade
  }

  for (const fs::path& csv_path : csvs) {
    const std::string stem = csv_path.stem().string();
    fs::path cache_path;
    if (!cache_dir.empty()) {
      cache_path = fs::path(cache_dir) / (stem + ".ardac");
    }

    if (!cache_path.empty() && CacheIsFresh(cache_path, csv_path)) {
      Result<df::DataFrame> cached = df::ReadColumnar(cache_path.string());
      if (cached.ok()) {
        AddOrReplace(stem, std::move(cached).value());
        ++stats->tables_loaded;
        ++stats->cache_hits;
        continue;
      }
      // Graceful degradation: a corrupt/skewed/faulted cache never fails
      // the load — fall through to the CSV. Counter and stats entry move
      // in lockstep so run reports stay consistent (see
      // AugmentationTask::ingest_skips).
      metrics::IncrementCounter("skips.ingest");
      stats->fallbacks.push_back(
          {stem, "columnar cache read failed, re-parsed CSV: " +
                     cached.status().ToString()});
    }

    Result<df::DataFrame> table =
        df::ReadCsvFile(csv_path.string(), csv_options);
    if (!table.ok()) {
      stats->failures.push_back({stem, table.status().ToString()});
      continue;
    }
    if (!cache_path.empty()) {
      // Best-effort cache refresh; a failed write only costs the next run
      // a re-parse.
      if (df::WriteColumnar(*table, cache_path.string()).ok()) {
        ++stats->cache_writes;
      }
    }
    AddOrReplace(stem, std::move(table).value());
    ++stats->tables_loaded;
  }
  return Status::Ok();
}

Status DataRepository::Add(std::string name, df::DataFrame table) {
  auto [it, inserted] = tables_.emplace(std::move(name), std::move(table));
  if (!inserted) {
    return Status::AlreadyExists("table already registered: " + it->first);
  }
  return Status::Ok();
}

void DataRepository::AddOrReplace(std::string name, df::DataFrame table) {
  tables_[std::move(name)] = std::move(table);
}

bool DataRepository::Has(const std::string& name) const {
  return tables_.count(name) > 0;
}

Result<const df::DataFrame*> DataRepository::Get(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  return &it->second;
}

const df::DataFrame& DataRepository::GetOrDie(const std::string& name) const {
  auto it = tables_.find(name);
  ARDA_CHECK(it != tables_.end());
  return it->second;
}

Status DataRepository::Remove(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("no such table: " + name);
  }
  return Status::Ok();
}

std::vector<std::string> DataRepository::Names() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

}  // namespace arda::discovery
