#ifndef ARDA_UTIL_STRING_UTIL_H_
#define ARDA_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace arda {

/// Splits `text` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char delim);

/// Returns `text` with leading and trailing ASCII whitespace removed.
std::string_view Trim(std::string_view text);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Returns true if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Parses a double; returns false on malformed or trailing garbage.
bool ParseDouble(std::string_view text, double* out);

/// Parses a signed 64-bit integer; returns false on malformed input.
bool ParseInt64(std::string_view text, int64_t* out);

/// Lower-cases ASCII letters.
std::string ToLower(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Escapes `text` for embedding inside a JSON string literal: quotes,
/// backslashes and all control characters (< 0x20) become escape
/// sequences. Shared by every JSON emitter in the repo (run report,
/// trace export, metrics, benches) — emitting a string without it is a
/// bug (skip reasons and table names can carry quotes and newlines).
std::string JsonEscape(std::string_view text);

}  // namespace arda

#endif  // ARDA_UTIL_STRING_UTIL_H_
