#ifndef ARDA_UTIL_STRING_UTIL_H_
#define ARDA_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace arda {

/// Splits `text` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char delim);

/// Returns `text` with leading and trailing ASCII whitespace removed.
std::string_view Trim(std::string_view text);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Returns true if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Parses a double. The accepted grammar is locale-independent and strict
/// (see docs/csv_dialect.md "Numeric grammar"): optional surrounding ASCII
/// whitespace, optional single leading '-', decimal digits with at most
/// one '.', optional e/E exponent. Rejects "nan"/"inf" spellings, hex
/// floats, '+' signs, trailing garbage, and magnitudes outside double
/// range; subnormals (e.g. "1e-320") parse.
bool ParseDouble(std::string_view text, double* out);

/// Parses a signed 64-bit integer: optional surrounding ASCII whitespace,
/// optional single leading '-', decimal digits only (no '+', no hex).
/// Rejects trailing garbage and out-of-range values.
bool ParseInt64(std::string_view text, int64_t* out);

/// Parses a byte-size spelling: a non-negative decimal integer with an
/// optional single case-insensitive binary suffix `k`/`m`/`g` (multiples
/// of 1024; "64m" = 64 MiB). Rejects signs, fractions, trailing garbage,
/// and values that overflow uint64 after scaling. Used by the
/// `--memory-budget` flags.
bool ParseByteSize(std::string_view text, uint64_t* out);

/// Lower-cases ASCII letters.
std::string ToLower(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Escapes `text` for embedding inside a JSON string literal: quotes,
/// backslashes and all control characters (< 0x20) become escape
/// sequences. Shared by every JSON emitter in the repo (run report,
/// trace export, metrics, benches) — emitting a string without it is a
/// bug (skip reasons and table names can carry quotes and newlines).
std::string JsonEscape(std::string_view text);

}  // namespace arda

#endif  // ARDA_UTIL_STRING_UTIL_H_
