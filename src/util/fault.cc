#include "util/fault.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "util/string_util.h"

namespace arda::fault {

namespace {

struct ArmedSite {
  std::string name;
  // 0 = every hit fails; otherwise only this (1-based) hit fails.
  uint64_t only_hit = 0;
  uint64_t hits = 0;
};

struct FaultState {
  std::mutex mu;
  std::vector<ArmedSite> sites;
};

// Any armed sites at all; checked lock-free on the hot path.
std::atomic<bool> g_armed{false};

FaultState& State() {
  static FaultState* state = new FaultState();
  return *state;
}

bool KnownSite(std::string_view name) {
  for (std::string_view site : AllFaultSites()) {
    if (site == name) return true;
  }
  return false;
}

Status ParseSpecLocked(std::string_view spec, std::vector<ArmedSite>* out) {
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    std::string_view entry = Trim(spec.substr(pos, comma - pos));
    pos = comma + 1;
    if (entry.empty()) continue;
    ArmedSite site;
    size_t colon = entry.find(':');
    if (colon == std::string_view::npos) {
      site.name = std::string(entry);
    } else {
      site.name = std::string(Trim(entry.substr(0, colon)));
      int64_t n = 0;
      if (!ParseInt64(Trim(entry.substr(colon + 1)), &n) || n <= 0) {
        return Status::InvalidArgument("bad fault hit count in spec entry: " +
                                       std::string(entry));
      }
      site.only_hit = static_cast<uint64_t>(n);
    }
    if (!KnownSite(site.name)) {
      return Status::InvalidArgument("unknown fault site: " + site.name);
    }
    out->push_back(std::move(site));
  }
  return Status::Ok();
}

// Arms sites from the ARDA_FAULT environment variable exactly once.
void ArmFromEnvOnce() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    const char* env = std::getenv("ARDA_FAULT");
    if (env == nullptr || *env == '\0') return;
    FaultState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    std::vector<ArmedSite> sites;
    Status st = ParseSpecLocked(env, &sites);
    if (!st.ok()) {
      // A bad env spec should fail loudly, not silently run without
      // faults: tests and operators both rely on the injection arming.
      std::fprintf(stderr, "ARDA_FAULT: %s\n", st.ToString().c_str());
      std::abort();
    }
    state.sites = std::move(sites);
    g_armed.store(!state.sites.empty(), std::memory_order_release);
  });
}

}  // namespace

const std::vector<std::string_view>& AllFaultSites() {
  static const std::vector<std::string_view>* sites =
      new std::vector<std::string_view>{
          kCsvParse, kColumnarRead, kColumnarMap, kStatsDecode,
          kJoinKeyEncode, kPreAggregate, kPartitionSpill, kResample,
          kImpute, kCholesky, kCoreset, kRifs, kServiceAccept,
          kServiceIngest,
      };
  return *sites;
}

void InitFromEnvironment() { ArmFromEnvOnce(); }

bool FaultsArmed() {
  ArmFromEnvOnce();
  return g_armed.load(std::memory_order_acquire);
}

bool ShouldFail(std::string_view site) {
  FaultState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  for (ArmedSite& armed : state.sites) {
    if (armed.name != site) continue;
    ++armed.hits;
    return armed.only_hit == 0 || armed.hits == armed.only_hit;
  }
  return false;
}

Status SetFaultSpecForTest(std::string_view spec) {
  ArmFromEnvOnce();  // keep env parsing ordered before overrides
  FaultState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<ArmedSite> sites;
  ARDA_RETURN_IF_ERROR(ParseSpecLocked(spec, &sites));
  state.sites = std::move(sites);
  g_armed.store(!state.sites.empty(), std::memory_order_release);
  return Status::Ok();
}

void ResetFaultCounters() {
  FaultState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  for (ArmedSite& site : state.sites) site.hits = 0;
}

Status InjectedFault(std::string_view site) {
  return Status::Internal("injected fault at site '" + std::string(site) +
                          "' (ARDA_FAULT)");
}

}  // namespace arda::fault
