#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace arda {

namespace {

// SplitMix64, used to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(&s);
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformUint64(uint64_t bound) {
  ARDA_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  ARDA_CHECK_LE(lo, hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(UniformUint64(range));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  while (u1 <= 1e-300) u1 = UniformDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

int64_t Rng::Poisson(double lambda) {
  ARDA_CHECK_GE(lambda, 0.0);
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth's product method.
    const double l = std::exp(-lambda);
    int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= UniformDouble();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction for large rates.
  double sample = Normal(lambda, std::sqrt(lambda));
  return sample < 0.0 ? 0 : static_cast<int64_t>(sample + 0.5);
}

double Rng::Exponential(double rate) {
  ARDA_CHECK_GT(rate, 0.0);
  double u = UniformDouble();
  while (u <= 1e-300) u = UniformDouble();
  return -std::log(u) / rate;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  ARDA_CHECK_LE(k, n);
  // Partial Fisher–Yates over an index array.
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(UniformUint64(n - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

std::vector<size_t> Rng::SampleWithReplacement(size_t n, size_t k) {
  ARDA_CHECK_GT(n, 0u);
  std::vector<size_t> indices(k);
  for (size_t i = 0; i < k; ++i) {
    indices[i] = static_cast<size_t>(UniformUint64(n));
  }
  return indices;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace arda
