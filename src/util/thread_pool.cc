#include "util/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>

#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace arda {

namespace {

// True while the current thread is executing ParallelFor tasks; nested
// parallel loops detect this and run inline instead of re-entering the
// pool (which would deadlock a worker waiting on its own job).
thread_local bool t_in_parallel_region = false;

}  // namespace

struct ThreadPool::Job {
  size_t n = 0;
  size_t max_workers = 0;  // workers allowed to join (caller not counted)
  const std::function<void(size_t)>* fn = nullptr;
  std::atomic<size_t> next{0};      // next unclaimed index
  std::atomic<size_t> joined{0};    // workers that tried to join
  std::atomic<size_t> inflight{0};  // threads currently inside RunTasks
  std::atomic<bool> has_error{false};
  std::exception_ptr error;
  std::mutex error_mutex;
};

ThreadPool::ThreadPool(size_t num_workers) {
  metrics::SetGaugeMax("threadpool.workers",
                       static_cast<double>(num_workers));
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunTasks(Job* job) {
  // Participants increment `inflight` before claiming any index, so once
  // every index is claimed and `inflight` is zero, no fn call is pending
  // or running.
  job->inflight.fetch_add(1, std::memory_order_acq_rel);
  t_in_parallel_region = true;
  // Per-task latency and queue-depth reporting costs two clock reads and a
  // counter event per task, so it only runs while tracing is enabled; the
  // claim loop itself is untouched either way (observability never feeds
  // back into scheduling or results).
  const bool tracing = trace::Enabled();
  for (;;) {
    size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job->n) break;
    try {
      if (tracing) {
        trace::TraceSpan task_span("pool.task", "threadpool");
        Stopwatch task_watch;
        (*job->fn)(i);
        static metrics::Histogram& task_hist =
            metrics::GlobalRegistry().GetHistogram(
                "threadpool.task_seconds", metrics::LatencyBucketsSeconds());
        task_hist.Observe(task_watch.ElapsedSeconds());
        const size_t claimed = job->next.load(std::memory_order_relaxed);
        trace::CounterEvent(
            "threadpool.unclaimed_tasks",
            claimed >= job->n ? 0.0 : static_cast<double>(job->n - claimed));
      } else {
        (*job->fn)(i);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(job->error_mutex);
      if (!job->has_error.exchange(true)) {
        job->error = std::current_exception();
      }
    }
  }
  t_in_parallel_region = false;
  {
    // Lock before signalling so the caller cannot miss the wakeup between
    // its predicate check and its wait.
    std::lock_guard<std::mutex> lock(mutex_);
    job->inflight.fetch_sub(1, std::memory_order_acq_rel);
  }
  done_cv_.notify_all();
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen || !tasks_.empty();
      });
      if (stop_) return;
      // ParallelFor jobs outrank queued tasks: the publishing thread is
      // blocked until its range drains, while Submit callers are
      // asynchronous by contract. Remaining tasks keep the predicate true,
      // so the worker takes one on its next pass.
      if (generation_ != seen) {
        seen = generation_;
        job = job_;
      } else {
        task = std::move(tasks_.front());
        tasks_.pop_front();
        metrics::SetGauge("threadpool.queued_tasks",
                          static_cast<double>(tasks_.size()));
      }
    }
    if (job != nullptr) {
      // Cap participation so ParallelFor's max_parallelism is honored even
      // when the pool has more workers than requested. Late arrivals
      // (after the range is drained) enter RunTasks and exit immediately.
      if (job->joined.fetch_add(1, std::memory_order_acq_rel) <
          job->max_workers) {
        RunTasks(job.get());
      }
      continue;
    }
    if (task) task();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  metrics::IncrementCounter("threadpool.tasks_submitted_total");
  if (workers_.empty()) {
    // Zero-worker pools (single-core machines) degrade to synchronous
    // execution; there is nobody else to run the task.
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push_back(std::move(task));
    metrics::SetGauge("threadpool.queued_tasks",
                      static_cast<double>(tasks_.size()));
  }
  // notify_all, not notify_one: a single woken worker may pick up a
  // concurrently published ParallelFor job instead, and the remaining
  // waiters would never learn about the queued task.
  wake_cv_.notify_all();
}

size_t ThreadPool::PendingTasks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_.size();
}

void ThreadPool::ParallelFor(size_t n, size_t max_parallelism,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  size_t parallelism = max_parallelism;
  if (parallelism > n) parallelism = n;
  if (parallelism > workers_.size() + 1) parallelism = workers_.size() + 1;
  if (parallelism <= 1 || t_in_parallel_region) {
    // Serial path: identical to a plain for loop.
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto job = std::make_shared<Job>();
  job->n = n;
  job->max_workers = parallelism - 1;  // the caller participates too
  job->fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
    ++generation_;
  }
  wake_cv_.notify_all();

  RunTasks(job.get());

  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (job_ == job) job_ = nullptr;  // stop recruiting workers
    done_cv_.wait(lock, [&] {
      return job->next.load(std::memory_order_acquire) >= job->n &&
             job->inflight.load(std::memory_order_acquire) == 0;
    });
  }
  if (job->has_error.load(std::memory_order_acquire)) {
    std::rethrow_exception(job->error);
  }
}

size_t HardwareConcurrency() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

size_t ResolveNumThreads(size_t requested) {
  return requested == 0 ? HardwareConcurrency() : requested;
}

ThreadPool& GlobalThreadPool() {
  // Leaked intentionally: worker threads must outlive every static whose
  // destructor might run a parallel loop during shutdown.
  static ThreadPool* pool = new ThreadPool(HardwareConcurrency() - 1);
  return *pool;
}

void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& fn) {
  // Cached references: ParallelFor sits under every fit/predict/RIFS hot
  // path, so the registry lookup happens once per process, not per call.
  static metrics::Counter& calls = metrics::GlobalRegistry().GetCounter(
      "threadpool.parallel_for_total");
  static metrics::Histogram& sizes = metrics::GlobalRegistry().GetHistogram(
      "threadpool.parallel_for_n", metrics::SizeBuckets());
  calls.Increment();
  sizes.Observe(static_cast<double>(n));
  size_t threads = ResolveNumThreads(num_threads);
  if (threads <= 1 || n <= 1 || t_in_parallel_region) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  GlobalThreadPool().ParallelFor(n, threads, fn);
}

}  // namespace arda
