#ifndef ARDA_UTIL_TRACE_H_
#define ARDA_UTIL_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

/// \file
/// Thread-safe span tracer emitting Chrome/Perfetto trace-event JSON
/// (https://chromium.googlesource.com/catapult — "Trace Event Format").
/// The opt-in half of the observability subsystem: tracing is off by
/// default and a disabled `TraceSpan` costs one relaxed atomic load, no
/// clock reads and no allocation, so instrumentation stays in release
/// builds permanently.
///
/// Model: `TraceSpan` RAII scopes record complete ("X"-phase) events into
/// per-thread buffers — no cross-thread contention on the hot path; the
/// exporter merges and time-sorts all buffers. Span ids are deterministic
/// (a per-thread sequence tagged with a dense thread index assigned on
/// first use), never derived from pointers or randomness. `CounterEvent`
/// records "C"-phase samples (e.g. queue depth) that Perfetto renders as
/// a counter track.
///
/// Tracing never feeds back into computation: the determinism contract
/// (DESIGN.md) extends to it — results are bit-identical with tracing
/// enabled or disabled, which tests/parallel_determinism_test.cc pins.

namespace arda::trace {

/// True while span recording is armed. One relaxed atomic load.
bool Enabled();
/// Arms recording. The trace clock epoch is fixed on the first Enable().
void Enable();
/// Disarms recording; already-recorded events are kept until Reset().
void Disable();
/// Drops every recorded event and restarts per-thread span sequences.
/// Thread indices (and the clock epoch) survive so ids stay stable
/// within a process.
void Reset();

/// One recorded trace event.
struct TraceEvent {
  const char* name = "";  // must be a static-lifetime string
  const char* cat = "";
  char phase = 'X';    // 'X' complete span, 'C' counter sample
  double ts_us = 0.0;  // microseconds since the trace epoch
  double dur_us = 0.0;
  uint32_t tid = 0;
  uint64_t span_id = 0;  // (tid << 32) | per-thread sequence; 'X' only
  double value = 0.0;    // 'C' only
  std::string detail;    // optional dynamic payload, JSON-escaped on export
};

/// RAII scope recording one complete span from construction to
/// destruction. `name` and `category` must be static-lifetime strings
/// (literals); run-specific payload (table names, sizes) goes into
/// `detail`. When tracing is disabled the constructor returns after one
/// atomic load and the destructor is a no-op.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "pipeline");
  TraceSpan(const char* name, const char* category, std::string detail);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Deterministic id of this span; 0 when tracing was disabled at
  /// construction.
  uint64_t span_id() const { return span_id_; }

 private:
  const char* name_;
  const char* cat_;
  std::string detail_;
  double start_us_ = 0.0;
  uint64_t span_id_ = 0;
  bool armed_ = false;
};

/// Records a counter sample ("C" phase) when tracing is enabled.
void CounterEvent(const char* name, double value);

/// Serializes every recorded event as a Chrome/Perfetto-loadable JSON
/// document ({"displayTimeUnit": "ms", "traceEvents": [...]}) with
/// events sorted by timestamp and one thread-name metadata record per
/// thread that recorded anything.
std::string ToJson();

/// Writes ToJson() to `path`.
Status WriteJson(const std::string& path);

/// Number of events recorded so far (all threads).
size_t EventCount();

/// Microseconds since the trace epoch (also used for span timestamps).
double NowMicros();

}  // namespace arda::trace

namespace arda::trace_internal {

/// Implementation hook for StageScope; see trace.cc.
void ObserveStageSeconds(const char* stage, double seconds);

}  // namespace arda::trace_internal

namespace arda::trace {

/// Thread-local collector of per-stage wall times, for slow-request
/// diagnostics (PR 9): while one is installed on a thread, every
/// StageScope ending on that thread also appends `{stage, seconds}`
/// here (the always-on `stage.*` histogram still gets its observation —
/// collection is strictly additive). The service's RunAugment installs
/// one on the pool thread running a request, so a request that trips
/// `--slow-request-ms` can log its full stage breakdown without tracing
/// armed. Collectors nest: the innermost installed one wins until it
/// goes out of scope.
class StageCollector {
 public:
  struct Entry {
    const char* stage;  // static-lifetime (StageScope contract)
    double seconds;
  };

  StageCollector();
  ~StageCollector();

  StageCollector(const StageCollector&) = delete;
  StageCollector& operator=(const StageCollector&) = delete;

  const std::vector<Entry>& entries() const { return entries_; }

  /// The collector currently installed on this thread; null when none.
  static StageCollector* Current();

 private:
  friend void trace_internal::ObserveStageSeconds(const char*, double);
  void Add(const char* stage, double seconds) {
    entries_.push_back({stage, seconds});
  }

  std::vector<Entry> entries_;
  StageCollector* previous_ = nullptr;
};

/// Combined pipeline-stage scope: opens a TraceSpan named `stage` and, on
/// destruction, records the elapsed wall time into the always-on metrics
/// histogram `stage.<stage>` (the source of the CLI per-stage summary
/// table). Use for coarse pipeline stages; use plain TraceSpan plus a
/// cached metrics::Histogram reference in per-row/per-tree hot paths.
class StageScope {
 public:
  explicit StageScope(const char* stage) : StageScope(stage, "") {}
  StageScope(const char* stage, std::string detail)
      : span_(stage, "stage", std::move(detail)),
        stage_(stage),
        start_(std::chrono::steady_clock::now()) {}
  ~StageScope() {
    trace_internal::ObserveStageSeconds(
        stage_, std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start_)
                    .count());
  }

  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  TraceSpan span_;
  const char* stage_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace arda::trace

#endif  // ARDA_UTIL_TRACE_H_
