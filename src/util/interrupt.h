#ifndef ARDA_UTIL_INTERRUPT_H_
#define ARDA_UTIL_INTERRUPT_H_

/// \file
/// Cooperative interrupt handling shared by the one-shot CLI and the
/// augmentation daemon. `InstallSignalHandlers` routes SIGINT/SIGTERM to
/// an async-signal-safe flag (plus one byte down a self-pipe so blocking
/// poll/accept loops wake immediately); long-running pipelines poll
/// `InterruptRequested` between stages and wind down instead of dying
/// mid-write:
///
///   - `arda_cli` finishes the current stage, then emits its report
///     (marked `"interrupted": true`), trace file and augmented CSV from
///     whatever completed — a Ctrl-C no longer loses --trace-out output.
///   - `arda_serve` stops accepting connections, finishes in-flight
///     requests, rejects queued ones, and exits 0.
///
/// The handler itself only writes the flag and the pipe byte (both
/// async-signal-safe); all teardown runs on normal threads.

namespace arda::interrupt {

/// Installs SIGINT and SIGTERM handlers (idempotent; first call wins).
/// Handlers are installed without SA_RESTART so blocking syscalls on the
/// main thread return EINTR, but waiters should prefer the self-pipe fd.
void InstallSignalHandlers();

/// True once any handled signal has been delivered (or RequestInterrupt
/// was called). One relaxed atomic load — safe to poll from hot loops.
bool InterruptRequested();

/// Sets the interrupt flag programmatically (graceful-shutdown requests,
/// tests). Wakes self-pipe waiters exactly like a signal would.
void RequestInterrupt();

/// Clears the flag and drains the self-pipe (tests only; a real process
/// treats interruption as terminal).
void ResetForTest();

/// Read end of the self-pipe: becomes readable when an interrupt
/// arrives, so event loops can poll it alongside their own fds. Returns
/// -1 before InstallSignalHandlers (or if the pipe could not be
/// created). Never read from it directly — poll for readability and then
/// check InterruptRequested(); the byte stays queued so every waiter
/// wakes.
int WakeupFd();

/// The signal number that triggered the interrupt (0 when none, or when
/// the interrupt was requested programmatically).
int InterruptSignal();

}  // namespace arda::interrupt

#endif  // ARDA_UTIL_INTERRUPT_H_
