#ifndef ARDA_UTIL_CHECK_H_
#define ARDA_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Invariant-checking macros. A failed check indicates a programmer error
/// (violated precondition or internal invariant), prints the location and
/// message to stderr, and aborts. Recoverable conditions (bad user input,
/// malformed files) use arda::Status instead; see util/status.h.

namespace arda::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "ARDA_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace arda::internal

/// Aborts the process if `cond` is false.
#define ARDA_CHECK(cond)                                        \
  do {                                                          \
    if (!(cond)) {                                              \
      ::arda::internal::CheckFailed(__FILE__, __LINE__, #cond); \
    }                                                           \
  } while (0)

/// Aborts if `a != b`.
#define ARDA_CHECK_EQ(a, b) ARDA_CHECK((a) == (b))
/// Aborts if `a == b`.
#define ARDA_CHECK_NE(a, b) ARDA_CHECK((a) != (b))
/// Aborts if `a > b`.
#define ARDA_CHECK_LE(a, b) ARDA_CHECK((a) <= (b))
/// Aborts if `a >= b`.
#define ARDA_CHECK_LT(a, b) ARDA_CHECK((a) < (b))
/// Aborts if `a < b`.
#define ARDA_CHECK_GE(a, b) ARDA_CHECK((a) >= (b))
/// Aborts if `a <= b`.
#define ARDA_CHECK_GT(a, b) ARDA_CHECK((a) > (b))

#endif  // ARDA_UTIL_CHECK_H_
