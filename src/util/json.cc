#include "util/json.h"

#include <cmath>
#include <cstdio>

#include "util/string_util.h"

namespace arda::json {

namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text;
  size_t pos = 0;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at offset %zu: %s", pos, what.c_str()));
  }

  bool Consume(std::string_view literal) {
    if (text.substr(pos, literal.size()) != literal) return false;
    pos += literal.size();
    return true;
  }

  Result<Value> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (AtEnd()) return Error("unexpected end of input");
    char c = Peek();
    switch (c) {
      case 'n':
        if (Consume("null")) return Value::MakeNull();
        return Error("bad literal");
      case 't':
        if (Consume("true")) return Value::MakeBool(true);
        return Error("bad literal");
      case 'f':
        if (Consume("false")) return Value::MakeBool(false);
        return Error("bad literal");
      case '"':
        return ParseString();
      case '[':
        return ParseArray(depth);
      case '{':
        return ParseObject(depth);
      default:
        return ParseNumber();
    }
  }

  Result<Value> ParseString() {
    ++pos;  // opening quote
    std::string out;
    while (true) {
      if (AtEnd()) return Error("unterminated string");
      char c = text[pos++];
      if (c == '"') return Value::MakeString(std::move(out));
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (AtEnd()) return Error("unterminated escape");
      char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          uint32_t code = 0;
          ARDA_RETURN_IF_ERROR(ParseHex4(&code));
          // Surrogate pair -> one code point.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (!Consume("\\u")) return Error("unpaired high surrogate");
            uint32_t low = 0;
            ARDA_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(code, &out);
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos + 4 > text.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text[pos++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("bad hex digit in \\u escape");
      }
    }
    *out = value;
    return Status::Ok();
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xC0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      *out += static_cast<char>(0xE0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (code >> 18));
      *out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Result<Value> ParseNumber() {
    const size_t start = pos;
    if (!AtEnd() && Peek() == '-') ++pos;
    bool integral = true;
    auto digits = [&] {
      size_t before = pos;
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos;
      return pos > before;
    };
    const size_t int_start = pos;
    if (!digits()) return Error("bad number");
    // RFC 8259 int: zero / (digit1-9 *DIGIT) — no leading zeros.
    if (pos - int_start > 1 && text[int_start] == '0') {
      return Error("bad number: leading zero");
    }
    if (!AtEnd() && Peek() == '.') {
      integral = false;
      ++pos;
      if (!digits()) return Error("bad number: missing fraction digits");
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      integral = false;
      ++pos;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos;
      if (!digits()) return Error("bad number: missing exponent digits");
    }
    std::string_view token = text.substr(start, pos - start);
    if (integral) {
      int64_t i = 0;
      if (ParseInt64(token, &i)) return Value::MakeInt(i);
      // Out-of-int64-range integer literals fall through to double.
    }
    double d = 0.0;
    // ParseDouble rejects a leading '+' and hex floats, which JSON also
    // forbids; the grammar scan above already guarantees the shape.
    if (!ParseDouble(token, &d)) {
      return Error("number out of range: " + std::string(token));
    }
    return Value::MakeNumber(d);
  }

  Result<Value> ParseArray(int depth) {
    ++pos;  // '['
    std::vector<Value> items;
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos;
      return Value::MakeArray(std::move(items));
    }
    while (true) {
      ARDA_ASSIGN_OR_RETURN(Value item, ParseValue(depth + 1));
      items.push_back(std::move(item));
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated array");
      char c = text[pos++];
      if (c == ']') return Value::MakeArray(std::move(items));
      if (c != ',') return Error("expected ',' or ']' in array");
    }
  }

  Result<Value> ParseObject(int depth) {
    ++pos;  // '{'
    std::map<std::string, Value> members;
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos;
      return Value::MakeObject(std::move(members));
    }
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Error("expected object key");
      ARDA_ASSIGN_OR_RETURN(Value key, ParseString());
      SkipWhitespace();
      if (AtEnd() || text[pos++] != ':') return Error("expected ':'");
      ARDA_ASSIGN_OR_RETURN(Value value, ParseValue(depth + 1));
      members[key.AsString()] = std::move(value);
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated object");
      char c = text[pos++];
      if (c == '}') return Value::MakeObject(std::move(members));
      if (c != ',') return Error("expected ',' or '}' in object");
    }
  }
};

void SerializeTo(const Value& value, std::string* out) {
  switch (value.kind()) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += value.AsBool() ? "true" : "false";
      return;
    case Kind::kNumber:
      if (value.IsExactInt64()) {
        *out += StrFormat("%lld",
                          static_cast<long long>(value.AsInt64()));
      } else {
        *out += StrFormat("%.17g", value.AsDouble());
      }
      return;
    case Kind::kString:
      *out += '"';
      *out += JsonEscape(value.AsString());
      *out += '"';
      return;
    case Kind::kArray: {
      *out += '[';
      bool first = true;
      for (const Value& item : value.AsArray()) {
        if (!first) *out += ',';
        first = false;
        SerializeTo(item, out);
      }
      *out += ']';
      return;
    }
    case Kind::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [key, member] : value.AsObject()) {
        if (!first) *out += ',';
        first = false;
        *out += '"';
        *out += JsonEscape(key);
        *out += "\":";
        SerializeTo(member, out);
      }
      *out += '}';
      return;
    }
  }
}

}  // namespace

const Value* Value::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

std::string Value::StringOr(std::string_view key,
                            std::string fallback) const {
  const Value* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->AsString()
                                          : std::move(fallback);
}

double Value::NumberOr(std::string_view key, double fallback) const {
  const Value* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->AsDouble() : fallback;
}

int64_t Value::IntOr(std::string_view key, int64_t fallback) const {
  const Value* v = Find(key);
  if (v == nullptr || !v->is_number()) return fallback;
  if (v->IsExactInt64()) return v->AsInt64();
  return static_cast<int64_t>(v->AsDouble());
}

bool Value::BoolOr(std::string_view key, bool fallback) const {
  const Value* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v->AsBool() : fallback;
}

Value Value::MakeNull() { return Value(); }

Value Value::MakeBool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::MakeNumber(double d) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

Value Value::MakeInt(int64_t i) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.number_ = static_cast<double>(i);
  v.int_ = i;
  v.exact_int_ = true;
  return v;
}

Value Value::MakeString(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::MakeArray(std::vector<Value> items) {
  Value v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

Value Value::MakeObject(std::map<std::string, Value> members) {
  Value v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

Result<Value> Parse(std::string_view text) {
  Parser parser{text};
  ARDA_ASSIGN_OR_RETURN(Value value, parser.ParseValue(0));
  parser.SkipWhitespace();
  if (!parser.AtEnd()) {
    return parser.Error("trailing characters after document");
  }
  return value;
}

std::string Serialize(const Value& value) {
  std::string out;
  SerializeTo(value, &out);
  return out;
}

}  // namespace arda::json
