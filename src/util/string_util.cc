#include "util/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

namespace arda {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ParseDouble(std::string_view text, double* out) {
  text = Trim(text);
  if (text.empty()) return false;
  // std::from_chars still accepts strtod's "nan"/"inf(inity)" spellings;
  // the CSV grammar (docs/csv_dialect.md) wants those to stay strings, so
  // require the first character after an optional '-' to start a number.
  std::string_view body = text;
  if (body.front() == '-') body.remove_prefix(1);
  if (body.empty()) return false;
  char first = body.front();
  if (!(first >= '0' && first <= '9') && first != '.') return false;
  double value = 0.0;
  auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                   value, std::chars_format::general);
  // result_out_of_range covers both overflow (1e999) and magnitudes below
  // the smallest subnormal; plain subnormals (1e-320) parse cleanly, which
  // strtod's errno=ERANGE convention got wrong.
  if (ec != std::errc() || end != text.data() + text.size()) return false;
  *out = value;
  return true;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  text = Trim(text);
  if (text.empty()) return false;
  int64_t value = 0;
  auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value, 10);
  if (ec != std::errc() || end != text.data() + text.size()) return false;
  *out = value;
  return true;
}

bool ParseByteSize(std::string_view text, uint64_t* out) {
  text = Trim(text);
  if (text.empty()) return false;
  uint64_t scale = 1;
  const char last =
      static_cast<char>(std::tolower(static_cast<unsigned char>(text.back())));
  if (last == 'k' || last == 'm' || last == 'g') {
    scale = last == 'k' ? (uint64_t{1} << 10)
                        : last == 'm' ? (uint64_t{1} << 20)
                                      : (uint64_t{1} << 30);
    text.remove_suffix(1);
    if (text.empty()) return false;
  }
  uint64_t value = 0;
  auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value, 10);
  if (ec != std::errc() || end != text.data() + text.size()) return false;
  if (value != 0 && value > UINT64_MAX / scale) return false;
  *out = value * scale;
  return true;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace arda
