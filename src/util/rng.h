#ifndef ARDA_UTIL_RNG_H_
#define ARDA_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace arda {

/// Deterministic pseudo-random number generator (xoshiro256++) with the
/// distribution samplers the rest of the system needs. Every randomized
/// component takes an explicit Rng so experiments are reproducible from a
/// single seed.
class Rng {
 public:
  /// Seeds the generator; identical seeds give identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next raw 64-bit output.
  uint64_t NextUint64();

  /// Returns a uniform integer in [0, bound). `bound` must be positive.
  uint64_t UniformUint64(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double UniformDouble();

  /// Returns a uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Returns a standard normal sample (Box–Muller).
  double Normal();

  /// Returns a normal sample with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Returns true with probability `p`.
  bool Bernoulli(double p);

  /// Returns a Poisson sample with rate `lambda` (Knuth for small rates,
  /// normal approximation above 30).
  int64_t Poisson(double lambda);

  /// Returns an exponential sample with the given rate.
  double Exponential(double rate);

  /// Shuffles `values` in place (Fisher–Yates).
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) return;
    for (size_t i = values->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformUint64(i + 1));
      std::swap((*values)[i], (*values)[j]);
    }
  }

  /// Returns `k` distinct indices sampled uniformly from [0, n).
  /// `k` must be <= n. Output is in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Returns `k` indices sampled uniformly with replacement from [0, n).
  std::vector<size_t> SampleWithReplacement(size_t n, size_t k);

  /// Forks an independent generator, advancing this one. Use to hand
  /// deterministic sub-streams to parallel or nested components.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace arda

#endif  // ARDA_UTIL_RNG_H_
