#ifndef ARDA_UTIL_THREAD_POOL_H_
#define ARDA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace arda {

/// Fixed-size thread pool for data-parallel loops. There is no work
/// stealing and no task queue: `ParallelFor` publishes one index range and
/// the workers (plus the calling thread) claim indices from a shared atomic
/// counter until the range is exhausted.
///
/// Determinism contract: the pool never makes results depend on thread
/// count or scheduling. Callers must (a) hand every task a pre-forked
/// `Rng` sub-stream (or no randomness at all), (b) write only to
/// task-index-owned slots, and (c) reduce those slots in index order after
/// `ParallelFor` returns. Under that discipline `num_threads == 1` and
/// `num_threads == N` are bit-identical.
///
/// Nested `ParallelFor` calls (a task that itself starts a parallel loop)
/// run the inner loop inline on the calling thread, so recursive use cannot
/// deadlock or oversubscribe.
class ThreadPool {
 public:
  /// Spawns `num_workers` worker threads (0 is valid: every ParallelFor
  /// then runs inline on the caller).
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (excluding callers that join in).
  size_t num_workers() const { return workers_.size(); }

  /// Runs `fn(i)` for every i in [0, n) and blocks until all calls have
  /// returned. At most `max_parallelism` threads (including the caller)
  /// execute tasks. The first exception thrown by `fn` is rethrown on the
  /// calling thread after the loop drains.
  void ParallelFor(size_t n, size_t max_parallelism,
                   const std::function<void(size_t)>& fn);

 private:
  struct Job;

  void WorkerLoop();
  void RunTasks(Job* job);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Job> job_;  // published job; null when idle
  uint64_t generation_ = 0;
  bool stop_ = false;
};

/// Returns max(1, std::thread::hardware_concurrency()).
size_t HardwareConcurrency();

/// Resolves a `num_threads` knob: 0 means "hardware concurrency", any
/// other value is taken literally. Always returns >= 1.
size_t ResolveNumThreads(size_t requested);

/// Process-wide pool shared by all parallel regions, sized so that one
/// caller plus the workers saturate the hardware. Created on first use.
ThreadPool& GlobalThreadPool();

/// Runs `fn(i)` for i in [0, n) on the global pool with at most
/// `ResolveNumThreads(num_threads)` threads. With an effective thread
/// count of 1 (or n <= 1, or when called from inside another ParallelFor
/// task) the loop runs inline on the caller — the exact serial code path.
void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& fn);

}  // namespace arda

#endif  // ARDA_UTIL_THREAD_POOL_H_
