#ifndef ARDA_UTIL_THREAD_POOL_H_
#define ARDA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace arda {

/// Fixed-size thread pool serving two kinds of work:
///
///   1. Data-parallel loops (`ParallelFor`): one published index range the
///      workers (plus the calling thread) claim from a shared atomic
///      counter until the range is exhausted. No work stealing.
///   2. One-off tasks (`Submit`): a FIFO queue drained by idle workers,
///      used by the augmentation service to execute whole requests. A
///      worker running a long task simply doesn't participate in
///      concurrent ParallelFor jobs; a task may itself call ParallelFor
///      (the task thread participates like any other caller).
///
/// Determinism contract: the pool never makes results depend on thread
/// count or scheduling. Callers must (a) hand every task a pre-forked
/// `Rng` sub-stream (or no randomness at all), (b) write only to
/// task-index-owned slots, and (c) reduce those slots in index order after
/// `ParallelFor` returns. Under that discipline `num_threads == 1` and
/// `num_threads == N` are bit-identical.
///
/// Nested `ParallelFor` calls (a task that itself starts a parallel loop)
/// run the inner loop inline on the calling thread, so recursive use cannot
/// deadlock or oversubscribe.
class ThreadPool {
 public:
  /// Spawns `num_workers` worker threads (0 is valid: every ParallelFor
  /// then runs inline on the caller).
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (excluding callers that join in).
  size_t num_workers() const { return workers_.size(); }

  /// Runs `fn(i)` for every i in [0, n) and blocks until all calls have
  /// returned. At most `max_parallelism` threads (including the caller)
  /// execute tasks. The first exception thrown by `fn` is rethrown on the
  /// calling thread after the loop drains.
  void ParallelFor(size_t n, size_t max_parallelism,
                   const std::function<void(size_t)>& fn);

  /// Enqueues `task` for execution by an idle worker (FIFO order). Tasks
  /// must not throw — an escaping exception terminates the process. With
  /// zero workers the task runs inline on the caller before Submit
  /// returns (single-core fallback; callers needing asynchrony must not
  /// rely on it there). Admission control (bounding the queue) is the
  /// caller's job: pair PendingTasks() with a rejection policy, as the
  /// service's admission gate does. Tasks still queued when the pool is
  /// destroyed are dropped without running (drain before teardown).
  void Submit(std::function<void()> task);

  /// Tasks submitted but not yet started. Running tasks do not count.
  size_t PendingTasks() const;

 private:
  struct Job;

  void WorkerLoop();
  void RunTasks(Job* job);

  std::vector<std::thread> workers_;
  mutable std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Job> job_;  // published job; null when idle
  std::deque<std::function<void()>> tasks_;
  uint64_t generation_ = 0;
  bool stop_ = false;
};

/// Returns max(1, std::thread::hardware_concurrency()).
size_t HardwareConcurrency();

/// Resolves a `num_threads` knob: 0 means "hardware concurrency", any
/// other value is taken literally. Always returns >= 1.
size_t ResolveNumThreads(size_t requested);

/// Process-wide pool shared by all parallel regions, sized so that one
/// caller plus the workers saturate the hardware. Created on first use.
ThreadPool& GlobalThreadPool();

/// Runs `fn(i)` for i in [0, n) on the global pool with at most
/// `ResolveNumThreads(num_threads)` threads. With an effective thread
/// count of 1 (or n <= 1, or when called from inside another ParallelFor
/// task) the loop runs inline on the caller — the exact serial code path.
void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& fn);

}  // namespace arda

#endif  // ARDA_UTIL_THREAD_POOL_H_
