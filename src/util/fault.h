#ifndef ARDA_UTIL_FAULT_H_
#define ARDA_UTIL_FAULT_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

/// \file
/// Deterministic fault-injection harness for exercising graceful
/// degradation. Pipeline stages that can fail recoverably declare a named
/// fault site (`ARDA_FAULT_POINT`); when the site is armed — via the
/// `ARDA_FAULT` environment variable or `SetFaultSpecForTest` — the stage
/// returns an injected `Status` instead of doing its work, letting tests
/// prove the pipeline completes (skipping or downgrading the affected
/// candidate) with any single fault active.
///
/// Spec grammar (comma-separated list of sites):
///   ARDA_FAULT="cholesky"            every hit of the site fails
///   ARDA_FAULT="csv_parse:2"         only the 2nd hit fails (1-based)
///   ARDA_FAULT="impute,cholesky:1"   multiple armed sites
///
/// Hit counting is per-site and process-wide; `ResetFaultCounters`
/// restarts it (tests call this between cases). With no spec the
/// fast-path check is a single relaxed atomic load.

namespace arda::fault {

/// Canonical fault-site names, one per recoverable pipeline stage. Tests
/// iterate this list to build the single-fault matrix; arming an unknown
/// site name is an error surfaced by SetFaultSpecForTest.
inline constexpr std::string_view kCsvParse = "csv_parse";
inline constexpr std::string_view kColumnarRead = "columnar_read";
/// Mmap-backed open of a v3 `.ardac` file (dataframe/mapped_columnar.h).
/// A failed map degrades like a failed read: the loader falls back to the
/// CSV and records the table in LoadStats::fallbacks.
inline constexpr std::string_view kColumnarMap = "columnar_map";
inline constexpr std::string_view kStatsDecode = "stats_decode";
inline constexpr std::string_view kJoinKeyEncode = "join_key_encode";
inline constexpr std::string_view kPreAggregate = "preaggregate";
/// Radix-partitioned join/group-by drivers, hit before any partition
/// scatter buffer is built. An injected failure aborts the partitioned
/// kernel with a Status; the pipeline skips the candidate exactly like a
/// join_key_encode fault.
inline constexpr std::string_view kPartitionSpill = "partition_spill";
inline constexpr std::string_view kResample = "resample";
inline constexpr std::string_view kImpute = "impute";
inline constexpr std::string_view kCholesky = "cholesky";
inline constexpr std::string_view kCoreset = "coreset";
inline constexpr std::string_view kRifs = "rifs";
/// Service sites: request admission/decode in the daemon's connection
/// path (the request is rejected with an error response, the connection
/// and server survive) and snapshot construction during an `ingest`
/// request (the ingest fails, the previous snapshot keeps serving).
inline constexpr std::string_view kServiceAccept = "service_accept";
inline constexpr std::string_view kServiceIngest = "service_ingest";

/// Every registered fault site.
const std::vector<std::string_view>& AllFaultSites();

/// Reads `ARDA_FAULT` and arms the listed sites. The environment is
/// consulted exactly once per process (std::once_flag) no matter how
/// often this runs; entry points call it from main() before any worker
/// thread starts so no thread ever races std::getenv. The armed spec is
/// **process-wide, not per-request**: a long-lived server cannot inject
/// faults for one client only (tests override with SetFaultSpecForTest
/// instead). Callers that skip this get the same once-only arming lazily
/// on the first FaultsArmed() check. A malformed spec aborts the process
/// (tests and operators rely on the injection actually arming).
void InitFromEnvironment();

/// True when any fault site is armed (cheap: one atomic load).
bool FaultsArmed();

/// True when `site` should fail at this hit; increments the site's hit
/// counter when the site is armed. Thread-safe.
bool ShouldFail(std::string_view site);

/// Arms sites from `spec` (see grammar above), replacing any previous
/// spec, and resets all hit counters. An empty spec disarms everything.
/// Returns InvalidArgument for unknown site names or malformed counts.
Status SetFaultSpecForTest(std::string_view spec);

/// Resets per-site hit counters without changing the armed spec.
void ResetFaultCounters();

/// The injected error every armed site returns, so degradation reasons
/// are greppable in reports and logs.
Status InjectedFault(std::string_view site);

}  // namespace arda::fault

/// Fails the enclosing Status/Result-returning function with an injected
/// error when `site` is armed. Compiles to one atomic load when no fault
/// spec is set.
#define ARDA_FAULT_POINT(site)                          \
  do {                                                  \
    if (::arda::fault::FaultsArmed() &&                 \
        ::arda::fault::ShouldFail(site)) {              \
      return ::arda::fault::InjectedFault(site);        \
    }                                                   \
  } while (0)

#endif  // ARDA_UTIL_FAULT_H_
