#ifndef ARDA_UTIL_STATUS_H_
#define ARDA_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace arda {

/// Error category attached to a failed Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kInternal,
};

/// Returns a human-readable name of `code` ("Ok", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error type used across recoverable APIs
/// (CSV parsing, lookups by name, join execution). Programmer errors
/// (violated invariants) use ARDA_CHECK instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with `code` and diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "Code: message" for diagnostics.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or a failed Status.
///
/// Usage:
///   Result<DataFrame> r = ReadCsv(path);
///   if (!r.ok()) return r.status();
///   DataFrame df = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Constructs from a success value (implicit so `return value;` works).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs from a failed status (implicit so `return status;` works).
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    ARDA_CHECK(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; aborts if not ok.
  const T& value() const& {
    ARDA_CHECK(ok());
    return *value_;
  }
  T& value() & {
    ARDA_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    ARDA_CHECK(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace arda

/// Propagates a non-OK status from an expression returning Status.
#define ARDA_RETURN_IF_ERROR(expr)          \
  do {                                      \
    ::arda::Status _arda_status = (expr);   \
    if (!_arda_status.ok()) {               \
      return _arda_status;                  \
    }                                       \
  } while (0)

#define ARDA_INTERNAL_CONCAT_INNER(a, b) a##b
#define ARDA_INTERNAL_CONCAT(a, b) ARDA_INTERNAL_CONCAT_INNER(a, b)

#define ARDA_INTERNAL_ASSIGN_OR_RETURN(var, lhs, expr) \
  auto var = (expr);                                   \
  if (!var.ok()) {                                     \
    return var.status();                               \
  }                                                    \
  lhs = std::move(var).value()

/// Evaluates an expression returning Result<T>; on success binds the value
/// to `lhs`, otherwise returns the failed status from the enclosing function.
#define ARDA_ASSIGN_OR_RETURN(lhs, expr)                                  \
  ARDA_INTERNAL_ASSIGN_OR_RETURN(                                         \
      ARDA_INTERNAL_CONCAT(_arda_result_, __LINE__), lhs, expr)

#endif  // ARDA_UTIL_STATUS_H_
