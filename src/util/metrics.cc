#include "util/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>

#include "util/check.h"

namespace arda::metrics {

namespace {

// Lock-free add on an atomic<double> (fetch_add on floating atomics is
// not universally lock-free pre-C++20 ABI; a CAS loop is portable).
void AtomicAdd(std::atomic<double>* target, double delta) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double cur = target->load(std::memory_order_relaxed);
  while (value < cur && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double cur = target->load(std::memory_order_relaxed);
  while (value > cur && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Gauge::SetMax(double value) { AtomicMax(&value_, value); }

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    ARDA_CHECK(bounds_[i - 1] < bounds_[i]);
  }
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::Observe(double value) {
  size_t bucket = bounds_.size();  // overflow unless a bound catches it
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::Min() const {
  return Count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::Max() const {
  return Count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(window_mu_);
  ring_.clear();
  last_rotate_seconds_ = 0.0;
  ring_started_ = false;
}

Histogram::WindowSnapshot Histogram::CaptureSnapshot() const {
  WindowSnapshot snap;
  snap.counts = BucketCounts();
  snap.count = Count();
  return snap;
}

double Histogram::QuantileSince(double q,
                                const WindowSnapshot* baseline) const {
  q = std::min(1.0, std::max(0.0, q));
  std::vector<uint64_t> counts = BucketCounts();
  uint64_t total = count_.load(std::memory_order_relaxed);
  if (baseline != nullptr && baseline->counts.size() == counts.size()) {
    for (size_t i = 0; i < counts.size(); ++i) {
      counts[i] -= std::min(counts[i], baseline->counts[i]);
    }
    total -= std::min(total, baseline->count);
  }
  if (total == 0) return 0.0;
  if (bounds_.empty()) return 0.0;
  // Prometheus histogram_quantile: find the bucket the rank lands in,
  // interpolate linearly inside it. Rank is 1-based like Prometheus's
  // `rank = q * total`.
  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i == bounds_.size()) {
      // Rank lands in the overflow bucket: the best bounded statement we
      // can make is the highest finite bound.
      return bounds_.back();
    }
    const double upper = bounds_[i];
    const double lower = i == 0 ? 0.0 : bounds_[i - 1];
    const uint64_t in_bucket = counts[i];
    if (in_bucket == 0) return upper;
    const uint64_t below = cumulative - in_bucket;
    const double fraction =
        (rank - static_cast<double>(below)) / static_cast<double>(in_bucket);
    return lower + (upper - lower) * std::min(1.0, std::max(0.0, fraction));
  }
  return bounds_.back();
}

double Histogram::Quantile(double q) const {
  return QuantileSince(q, nullptr);
}

double Histogram::WindowQuantile(double q) const {
  std::lock_guard<std::mutex> lock(window_mu_);
  if (ring_.empty()) return QuantileSince(q, nullptr);
  return QuantileSince(q, &ring_.front());
}

void Histogram::MaybeRotate(double now_seconds) {
  std::lock_guard<std::mutex> lock(window_mu_);
  if (!ring_started_) {
    ring_started_ = true;
    last_rotate_seconds_ = now_seconds;
    ring_.push_back(CaptureSnapshot());
    return;
  }
  double elapsed = now_seconds - last_rotate_seconds_;
  if (elapsed < kQuantileWindowSeconds) return;
  if (elapsed >= kQuantileWindowSeconds * (kQuantileWindows + 1)) {
    // The exporter went away for longer than the whole ring covers:
    // everything in it is stale, start over from a fresh baseline.
    ring_.clear();
    ring_.push_back(CaptureSnapshot());
    last_rotate_seconds_ = now_seconds;
    return;
  }
  while (elapsed >= kQuantileWindowSeconds) {
    ring_.push_back(CaptureSnapshot());
    while (ring_.size() > kQuantileWindows) ring_.pop_front();
    last_rotate_seconds_ += kQuantileWindowSeconds;
    elapsed -= kQuantileWindowSeconds;
  }
}

const std::vector<double>& LatencyBucketsSeconds() {
  static const std::vector<double>* buckets = new std::vector<double>{
      1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0};
  return *buckets;
}

const std::vector<double>& SizeBuckets() {
  static const std::vector<double>* buckets = new std::vector<double>{
      1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9};
  return *buckets;
}

std::string BucketBoundLabel(const std::vector<double>& bounds,
                             size_t bucket_index) {
  if (bucket_index >= bounds.size()) return "+Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", bounds[bucket_index]);
  return buf;
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  for (const CounterSnapshot& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

Counter& Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name,
                                  const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(bounds))
             .first;
  }
  return *it->second;
}

MetricsSnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.bounds = hist->bounds();
    h.bucket_counts = hist->BucketCounts();
    h.count = hist->Count();
    h.sum = hist->Sum();
    h.min = hist->Min();
    h.max = hist->Max();
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void Registry::AdvanceWindows(double now_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, hist] : histograms_) hist->MaybeRotate(now_seconds);
}

void Registry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

Registry& GlobalRegistry() {
  // Leaked intentionally so metric references cached in static locals
  // stay valid during shutdown.
  static Registry* registry = new Registry();
  return *registry;
}

void IncrementCounter(std::string_view name, uint64_t delta) {
  GlobalRegistry().GetCounter(name).Increment(delta);
}

void SetGauge(std::string_view name, double value) {
  GlobalRegistry().GetGauge(name).Set(value);
}

void SetGaugeMax(std::string_view name, double value) {
  GlobalRegistry().GetGauge(name).SetMax(value);
}

void ObserveLatency(std::string_view name, double seconds) {
  GlobalRegistry().GetHistogram(name, LatencyBucketsSeconds())
      .Observe(seconds);
}

void ObserveSize(std::string_view name, double value) {
  GlobalRegistry().GetHistogram(name, SizeBuckets()).Observe(value);
}

void UpdatePeakRssGauge() {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) != 0) continue;
    unsigned long long kb = 0;
    if (std::sscanf(line + 6, "%llu", &kb) == 1) {
      SetGaugeMax("process.peak_rss_bytes",
                  static_cast<double>(kb) * 1024.0);
    }
    break;
  }
  std::fclose(f);
#endif
}

}  // namespace arda::metrics
