#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "util/string_util.h"

namespace arda::log {

namespace {

std::atomic<int> g_level{static_cast<int>(Level::kWarn)};
std::atomic<int> g_format{static_cast<int>(Format::kText)};

std::mutex& SinkMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

// Guarded by SinkMutex(). Leaked so logging stays safe during shutdown.
std::function<void(const std::string&)>*& SinkSlot() {
  static std::function<void(const std::string&)>* sink = nullptr;
  return sink;
}

std::chrono::steady_clock::time_point ProcessStart() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return start;
}

double WallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void WriteLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  if (SinkSlot() != nullptr) {
    (*SinkSlot())(line);
    return;
  }
  std::fprintf(stderr, "%s\n", line.c_str());
  std::fflush(stderr);
}

const char* LevelNameUpper(Level level) {
  switch (level) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO";
    case Level::kWarn:
      return "WARN";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF";
  }
  return "?";
}

template <typename Fields>
void LogImpl(Level level, std::string_view event, const Fields& fields) {
  if (!Enabled(level) || level == Level::kOff) return;
  const double mono = MonotonicSeconds();
  const double wall = WallSeconds();
  std::string line;
  line.reserve(128);
  if (GlobalFormat() == Format::kJson) {
    line += StrFormat("{\"ts\": %.6f, \"mono\": %.6f, \"level\": \"%s\", ",
                      wall, mono, LevelName(level));
    line += "\"event\": \"" + JsonEscape(event) + "\"";
    for (const Field& f : fields) {
      line += ", ";
      f.AppendJson(&line);
    }
    line += "}";
  } else {
    line += "[";
    line += LevelNameUpper(level);
    line += "] ";
    line += event;
    for (const Field& f : fields) {
      line += " ";
      f.AppendText(&line);
    }
  }
  WriteLine(line);
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kDebug:
      return "debug";
    case Level::kInfo:
      return "info";
    case Level::kWarn:
      return "warn";
    case Level::kError:
      return "error";
    case Level::kOff:
      return "off";
  }
  return "?";
}

Field Field::Str(std::string_view key, std::string_view value) {
  Field f(key, Kind::kString);
  f.str_ = std::string(value);
  return f;
}

Field Field::Int(std::string_view key, int64_t value) {
  Field f(key, Kind::kInt);
  f.int_ = value;
  return f;
}

Field Field::Uint(std::string_view key, uint64_t value) {
  Field f(key, Kind::kUint);
  f.uint_ = value;
  return f;
}

Field Field::F64(std::string_view key, double value) {
  Field f(key, Kind::kDouble);
  f.double_ = value;
  return f;
}

Field Field::Bool(std::string_view key, bool value) {
  Field f(key, Kind::kBool);
  f.bool_ = value;
  return f;
}

void Field::AppendText(std::string* out) const {
  *out += key_;
  *out += "=";
  switch (kind_) {
    case Kind::kString:
      *out += str_;
      break;
    case Kind::kInt:
      *out += StrFormat("%lld", static_cast<long long>(int_));
      break;
    case Kind::kUint:
      *out += StrFormat("%llu", static_cast<unsigned long long>(uint_));
      break;
    case Kind::kDouble:
      *out += StrFormat("%.6g", double_);
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
  }
}

void Field::AppendJson(std::string* out) const {
  *out += "\"" + JsonEscape(key_) + "\": ";
  switch (kind_) {
    case Kind::kString:
      *out += "\"" + JsonEscape(str_) + "\"";
      break;
    case Kind::kInt:
      *out += StrFormat("%lld", static_cast<long long>(int_));
      break;
    case Kind::kUint:
      *out += StrFormat("%llu", static_cast<unsigned long long>(uint_));
      break;
    case Kind::kDouble:
      *out += StrFormat("%.6g", double_);
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
  }
}

Level GlobalLevel() {
  return static_cast<Level>(g_level.load(std::memory_order_relaxed));
}

void SetLevel(Level level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool SetLevelFromSpec(std::string_view spec) {
  const std::string lower = ToLower(spec);
  if (lower == "debug") {
    SetLevel(Level::kDebug);
  } else if (lower == "info") {
    SetLevel(Level::kInfo);
  } else if (lower == "warn" || lower == "warning") {
    SetLevel(Level::kWarn);
  } else if (lower == "error") {
    SetLevel(Level::kError);
  } else if (lower == "off" || lower == "none") {
    SetLevel(Level::kOff);
  } else {
    return false;
  }
  return true;
}

Format GlobalFormat() {
  return static_cast<Format>(g_format.load(std::memory_order_relaxed));
}

void SetFormat(Format format) {
  g_format.store(static_cast<int>(format), std::memory_order_relaxed);
}

bool SetFormatFromSpec(std::string_view spec) {
  const std::string lower = ToLower(spec);
  if (lower == "text") {
    SetFormat(Format::kText);
  } else if (lower == "json") {
    SetFormat(Format::kJson);
  } else {
    return false;
  }
  return true;
}

void InitFromEnvironment() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* spec = std::getenv("ARDA_LOG");
    if (spec == nullptr || spec[0] == '\0') return;
    if (!SetLevelFromSpec(spec)) {
      std::fprintf(stderr,
                   "[WARN] log.bad_level spec=%s (expected "
                   "debug|info|warn|error|off; keeping %s)\n",
                   spec, LevelName(GlobalLevel()));
    }
  });
}

void Log(Level level, std::string_view event,
         std::initializer_list<Field> fields) {
  LogImpl(level, event, fields);
}

void Log(Level level, std::string_view event,
         const std::vector<Field>& fields) {
  LogImpl(level, event, fields);
}

void SetSinkForTest(std::function<void(const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  delete SinkSlot();
  SinkSlot() = sink ? new std::function<void(const std::string&)>(
                          std::move(sink))
                    : nullptr;
}

double MonotonicSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       ProcessStart())
      .count();
}

}  // namespace arda::log
