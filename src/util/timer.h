#ifndef ARDA_UTIL_TIMER_H_
#define ARDA_UTIL_TIMER_H_

#include <chrono>

namespace arda {

/// Wall-clock stopwatch used by the experiment harnesses to report
/// feature-selection and training times, paper-style.
class Stopwatch {
 public:
  /// Starts timing on construction.
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Returns seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Returns milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace arda

#endif  // ARDA_UTIL_TIMER_H_
