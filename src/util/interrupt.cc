#include "util/interrupt.h"

#include <atomic>
#include <csignal>
#include <mutex>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define ARDA_HAVE_SELF_PIPE 1
#else
#define ARDA_HAVE_SELF_PIPE 0
#endif

namespace arda::interrupt {

namespace {

// Everything the signal handler touches is lock-free and async-signal-
// safe: one atomic flag, one atomic signal number, one write(2) on the
// self-pipe.
std::atomic<bool> g_interrupted{false};
std::atomic<int> g_signal{0};
std::atomic<int> g_wakeup_write_fd{-1};
std::atomic<int> g_wakeup_read_fd{-1};

void WakeWaiters() {
#if ARDA_HAVE_SELF_PIPE
  int fd = g_wakeup_write_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    char byte = 1;
    // Best effort: a full pipe already has waiters awake. The byte is
    // never drained outside ResetForTest, so one write wakes every
    // future poll too.
    [[maybe_unused]] ssize_t ignored = ::write(fd, &byte, 1);
  }
#endif
}

extern "C" void ArdaSignalHandler(int signum) {
  g_signal.store(signum, std::memory_order_relaxed);
  g_interrupted.store(true, std::memory_order_relaxed);
  WakeWaiters();
}

void CreateSelfPipe() {
#if ARDA_HAVE_SELF_PIPE
  int fds[2];
  if (::pipe(fds) != 0) return;
  ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
  ::fcntl(fds[1], F_SETFL, O_NONBLOCK);
  ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(fds[1], F_SETFD, FD_CLOEXEC);
  g_wakeup_read_fd.store(fds[0], std::memory_order_release);
  g_wakeup_write_fd.store(fds[1], std::memory_order_release);
#endif
}

}  // namespace

void InstallSignalHandlers() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    CreateSelfPipe();
#if ARDA_HAVE_SELF_PIPE
    struct sigaction action = {};
    action.sa_handler = &ArdaSignalHandler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // deliberately no SA_RESTART: EINTR wakes loops
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
#else
    std::signal(SIGINT, &ArdaSignalHandler);
    std::signal(SIGTERM, &ArdaSignalHandler);
#endif
  });
}

bool InterruptRequested() {
  return g_interrupted.load(std::memory_order_relaxed);
}

void RequestInterrupt() {
  g_interrupted.store(true, std::memory_order_relaxed);
  WakeWaiters();
}

void ResetForTest() {
  g_interrupted.store(false, std::memory_order_relaxed);
  g_signal.store(0, std::memory_order_relaxed);
#if ARDA_HAVE_SELF_PIPE
  int fd = g_wakeup_read_fd.load(std::memory_order_acquire);
  if (fd >= 0) {
    char buf[64];
    while (::read(fd, buf, sizeof(buf)) > 0) {
    }
  }
#endif
}

int WakeupFd() { return g_wakeup_read_fd.load(std::memory_order_acquire); }

int InterruptSignal() { return g_signal.load(std::memory_order_relaxed); }

}  // namespace arda::interrupt
