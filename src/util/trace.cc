#include "util/trace.h"

#include <algorithm>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "util/metrics.h"
#include "util/string_util.h"

namespace arda::trace {

namespace {

std::atomic<bool> g_enabled{false};

// Per-thread event buffer. Appends take the buffer's own mutex (only
// contended when the exporter runs concurrently); the global registry
// keeps a shared_ptr so events survive thread exit.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  uint32_t tid = 0;
  uint64_t next_span_seq = 1;
};

struct TraceState {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::atomic<uint32_t> next_tid{0};
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

TraceState& State() {
  // Leaked intentionally: worker threads may record during shutdown.
  static TraceState* state = new TraceState();
  return *state;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    TraceState& state = State();
    b->tid = state.next_tid.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(state.mu);
    state.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

void AppendEvent(TraceEvent event) {
  ThreadBuffer& buffer = LocalBuffer();
  event.tid = buffer.tid;
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(std::move(event));
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void Enable() {
  State();  // fix the epoch before the first span
  g_enabled.store(true, std::memory_order_release);
}

void Disable() { g_enabled.store(false, std::memory_order_release); }

void Reset() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  for (const std::shared_ptr<ThreadBuffer>& buffer : state.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
    buffer->next_span_seq = 1;
  }
}

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - State().epoch)
      .count();
}

TraceSpan::TraceSpan(const char* name, const char* category)
    : TraceSpan(name, category, std::string()) {}

TraceSpan::TraceSpan(const char* name, const char* category,
                     std::string detail)
    : name_(name), cat_(category), detail_(std::move(detail)) {
  if (!Enabled()) return;
  armed_ = true;
  ThreadBuffer& buffer = LocalBuffer();
  {
    std::lock_guard<std::mutex> lock(buffer.mu);
    span_id_ = (static_cast<uint64_t>(buffer.tid) << 32) |
               buffer.next_span_seq++;
  }
  start_us_ = NowMicros();
}

TraceSpan::~TraceSpan() {
  if (!armed_) return;
  TraceEvent event;
  event.name = name_;
  event.cat = cat_;
  event.phase = 'X';
  event.ts_us = start_us_;
  event.dur_us = NowMicros() - start_us_;
  event.span_id = span_id_;
  event.detail = std::move(detail_);
  AppendEvent(std::move(event));
}

void CounterEvent(const char* name, double value) {
  if (!Enabled()) return;
  TraceEvent event;
  event.name = name;
  event.cat = "counter";
  event.phase = 'C';
  event.ts_us = NowMicros();
  event.value = value;
  AppendEvent(std::move(event));
}

size_t EventCount() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  size_t total = 0;
  for (const std::shared_ptr<ThreadBuffer>& buffer : state.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += buffer->events.size();
  }
  return total;
}

std::string ToJson() {
  // Merge every thread buffer, then time-sort so Perfetto sees a
  // monotone stream.
  std::vector<TraceEvent> events;
  std::vector<uint32_t> tids;
  {
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    for (const std::shared_ptr<ThreadBuffer>& buffer : state.buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      if (!buffer->events.empty()) tids.push_back(buffer->tid);
      events.insert(events.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  std::sort(tids.begin(), tids.end());

  std::string out = "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  bool first = true;
  auto append = [&](const std::string& line) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  };
  for (uint32_t tid : tids) {
    append(StrFormat("{\"ph\": \"M\", \"pid\": 1, \"tid\": %u, "
                     "\"name\": \"thread_name\", "
                     "\"args\": {\"name\": \"thread-%u\"}}",
                     tid, tid));
  }
  for (const TraceEvent& e : events) {
    if (e.phase == 'C') {
      append(StrFormat("{\"ph\": \"C\", \"pid\": 1, \"tid\": %u, "
                       "\"name\": \"%s\", \"ts\": %.3f, "
                       "\"args\": {\"value\": %.6g}}",
                       e.tid, JsonEscape(e.name).c_str(), e.ts_us,
                       e.value));
      continue;
    }
    std::string line = StrFormat(
        "{\"ph\": \"X\", \"pid\": 1, \"tid\": %u, \"name\": \"%s\", "
        "\"cat\": \"%s\", \"ts\": %.3f, \"dur\": %.3f, "
        "\"args\": {\"span_id\": %llu",
        e.tid, JsonEscape(e.name).c_str(), JsonEscape(e.cat).c_str(),
        e.ts_us, e.dur_us, static_cast<unsigned long long>(e.span_id));
    if (!e.detail.empty()) {
      line += ", \"detail\": \"" + JsonEscape(e.detail) + "\"";
    }
    line += "}}";
    append(line);
  }
  out += "\n]\n}\n";
  return out;
}

Status WriteJson(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open file for writing: " + path);
  }
  out << ToJson();
  if (!out) {
    return Status::IoError("failed writing file: " + path);
  }
  return Status::Ok();
}

namespace {

thread_local StageCollector* g_stage_collector = nullptr;

}  // namespace

StageCollector::StageCollector() : previous_(g_stage_collector) {
  g_stage_collector = this;
}

StageCollector::~StageCollector() { g_stage_collector = previous_; }

StageCollector* StageCollector::Current() { return g_stage_collector; }

}  // namespace arda::trace

namespace arda::trace_internal {

void ObserveStageSeconds(const char* stage, double seconds) {
  metrics::GlobalRegistry()
      .GetHistogram(std::string("stage.") + stage,
                    metrics::LatencyBucketsSeconds())
      .Observe(seconds);
  if (trace::StageCollector* collector = trace::StageCollector::Current()) {
    collector->Add(stage, seconds);
  }
}

}  // namespace arda::trace_internal
