#ifndef ARDA_UTIL_METRICS_H_
#define ARDA_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

/// \file
/// Process-wide metrics registry: named counters, gauges and fixed-bucket
/// histograms. The registry is the always-on half of the observability
/// subsystem (the span tracer in util/trace.h is the opt-in half): every
/// update is a handful of relaxed atomic operations, so pipeline stages
/// record unconditionally and the CLI / JSON report render a snapshot at
/// the end of a run.
///
/// Naming convention: lower-case dotted paths grouped by subsystem —
/// `skips.<stage>`, `stage.<stage>` (latency histograms feeding the CLI
/// per-stage table), `join.*`, `rifs.*`, `ml.*`, `threadpool.*`,
/// `process.*`. Metric objects are created on first use and never
/// deallocated; `ResetForTest` zeroes values in place, so cached
/// references stay valid across resets.
///
/// Metrics never feed back into computation: results are bit-identical
/// whether or not anything reads them (see the determinism contract in
/// DESIGN.md).

namespace arda::metrics {

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written (or maximum-so-far) instantaneous value.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  /// Keeps the maximum of the current value and `value`.
  void SetMax(double value);
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are strictly increasing inclusive
/// upper bounds ("le" semantics — a value lands in the first bucket whose
/// bound is >= the value); one implicit overflow bucket catches the rest.
/// Also tracks count, sum, min and max of observed values.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (overflow last).
  std::vector<uint64_t> BucketCounts() const;
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Min/Max are 0 when nothing has been observed.
  double Min() const;
  double Max() const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Default latency buckets in seconds: 1µs … 100s, decade-spaced.
const std::vector<double>& LatencyBucketsSeconds();

/// Default size/count buckets: 1 … 1e9, decade-spaced.
const std::vector<double>& SizeBuckets();

/// Point-in-time copy of every registered metric, sorted by name.
struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
};
struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<uint64_t> bucket_counts;  // bounds.size() + 1, overflow last
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Finds a counter by name; 0 when absent.
  uint64_t CounterValue(std::string_view name) const;
};

/// Registry of named metrics. Lookup takes a mutex (cache the returned
/// reference in hot paths — objects are never deallocated); updates on the
/// returned objects are lock-free.
class Registry {
 public:
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  /// Returns the existing histogram when `name` is already registered
  /// (its original bounds win); otherwise creates one with `bounds`.
  Histogram& GetHistogram(std::string_view name,
                          const std::vector<double>& bounds);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric in place. References handed out earlier remain
  /// valid; histogram bounds are preserved.
  void ResetForTest();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
      histograms_;
};

/// The process-wide registry every pipeline stage records into.
Registry& GlobalRegistry();

/// Convenience one-liners on GlobalRegistry().
void IncrementCounter(std::string_view name, uint64_t delta = 1);
void SetGauge(std::string_view name, double value);
void SetGaugeMax(std::string_view name, double value);
/// Observes into a histogram with LatencyBucketsSeconds().
void ObserveLatency(std::string_view name, double seconds);
/// Observes into a histogram with SizeBuckets().
void ObserveSize(std::string_view name, double value);

/// Samples the process peak resident set size (Linux: VmHWM from
/// /proc/self/status) into the `process.peak_rss_bytes` gauge. No-op on
/// platforms without that interface.
void UpdatePeakRssGauge();

}  // namespace arda::metrics

#endif  // ARDA_UTIL_METRICS_H_
