#ifndef ARDA_UTIL_METRICS_H_
#define ARDA_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

/// \file
/// Process-wide metrics registry: named counters, gauges and fixed-bucket
/// histograms. The registry is the always-on half of the observability
/// subsystem (the span tracer in util/trace.h is the opt-in half): every
/// update is a handful of relaxed atomic operations, so pipeline stages
/// record unconditionally and the CLI / JSON report render a snapshot at
/// the end of a run.
///
/// Naming convention: lower-case dotted paths grouped by subsystem —
/// `skips.<stage>`, `stage.<stage>` (latency histograms feeding the CLI
/// per-stage table), `join.*`, `rifs.*`, `ml.*`, `threadpool.*`,
/// `process.*`. Metric objects are created on first use and never
/// deallocated; `ResetForTest` zeroes values in place, so cached
/// references stay valid across resets.
///
/// Metrics never feed back into computation: results are bit-identical
/// whether or not anything reads them (see the determinism contract in
/// DESIGN.md).

namespace arda::metrics {

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written (or maximum-so-far) instantaneous value.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  /// Keeps the maximum of the current value and `value`.
  void SetMax(double value);
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are strictly increasing inclusive
/// upper bounds ("le" semantics — a value lands in the first bucket whose
/// bound is >= the value); one implicit overflow bucket catches the rest.
/// Also tracks count, sum, min and max of observed values.
///
/// On top of the cumulative counts the histogram keeps a sliding-window
/// quantile estimator: a ring of bucket-count snapshots (kQuantileWindows
/// windows of kQuantileWindowSeconds each) advanced by MaybeRotate —
/// exporters call it on their own cadence (the /metrics scrape path, the
/// service `stats` request); Observe never touches the ring, so the hot
/// path stays a handful of relaxed atomics.
class Histogram {
 public:
  /// Sliding-window shape: 12 windows x 10 s = quantiles over roughly the
  /// last two minutes once the ring is warm.
  static constexpr size_t kQuantileWindows = 12;
  static constexpr double kQuantileWindowSeconds = 10.0;

  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (overflow last).
  std::vector<uint64_t> BucketCounts() const;
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Min/Max are 0 when nothing has been observed.
  double Min() const;
  double Max() const;
  void Reset();

  /// Prometheus-style quantile estimate (histogram_quantile semantics:
  /// linear interpolation inside the bucket the rank lands in; the
  /// overflow bucket reports the highest finite bound) over every
  /// observation so far. `q` in [0, 1]; 0 when nothing was observed.
  double Quantile(double q) const;

  /// Quantile estimate over the sliding window: observations since the
  /// oldest snapshot in the ring (up to kQuantileWindows windows back,
  /// window-granular). Before the first rotation this is the all-time
  /// estimate.
  double WindowQuantile(double q) const;

  /// Advances the snapshot ring. `now_seconds` is any monotonic clock in
  /// seconds; the first call fixes the baseline, later calls push one
  /// snapshot per elapsed window (a gap longer than the whole ring
  /// resets it to a single fresh baseline). Cheap no-op within a window.
  void MaybeRotate(double now_seconds);

 private:
  /// Cumulative state captured at one window boundary.
  struct WindowSnapshot {
    std::vector<uint64_t> counts;  // bounds_.size() + 1
    uint64_t count = 0;
  };

  WindowSnapshot CaptureSnapshot() const;
  /// Quantile over (current cumulative counts - `baseline`); `baseline`
  /// may be null for the all-time estimate.
  double QuantileSince(double q, const WindowSnapshot* baseline) const;

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;

  /// Ring state (cold path only: rotation and quantile reads).
  mutable std::mutex window_mu_;
  std::deque<WindowSnapshot> ring_;
  double last_rotate_seconds_ = 0.0;
  bool ring_started_ = false;
};

/// Default latency buckets in seconds: 1µs … 100s, decade-spaced.
const std::vector<double>& LatencyBucketsSeconds();

/// Default size/count buckets: 1 … 1e9, decade-spaced.
const std::vector<double>& SizeBuckets();

/// Canonical rendering of one histogram bucket upper bound: `%.6g` for
/// the finite bounds, `"+Inf"` for the overflow bucket
/// (`bucket_index == bounds.size()`). Every emitter of `le` edges — the
/// JSON report's `MetricsToJson` and the Prometheus exposition — must go
/// through this helper so the two surfaces agree byte-for-byte.
std::string BucketBoundLabel(const std::vector<double>& bounds,
                             size_t bucket_index);

/// Point-in-time copy of every registered metric, sorted by name.
struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
};
struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<uint64_t> bucket_counts;  // bounds.size() + 1, overflow last
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Finds a counter by name; 0 when absent.
  uint64_t CounterValue(std::string_view name) const;
};

/// Registry of named metrics. Lookup takes a mutex (cache the returned
/// reference in hot paths — objects are never deallocated); updates on the
/// returned objects are lock-free.
class Registry {
 public:
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  /// Returns the existing histogram when `name` is already registered
  /// (its original bounds win); otherwise creates one with `bounds`.
  Histogram& GetHistogram(std::string_view name,
                          const std::vector<double>& bounds);

  MetricsSnapshot Snapshot() const;

  /// Rotates every histogram's sliding quantile window
  /// (Histogram::MaybeRotate). Exporters call this right before reading
  /// WindowQuantile so windows age even when individual histograms go
  /// quiet.
  void AdvanceWindows(double now_seconds);

  /// Zeroes every metric in place. References handed out earlier remain
  /// valid; histogram bounds are preserved.
  void ResetForTest();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
      histograms_;
};

/// The process-wide registry every pipeline stage records into.
Registry& GlobalRegistry();

/// Convenience one-liners on GlobalRegistry().
void IncrementCounter(std::string_view name, uint64_t delta = 1);
void SetGauge(std::string_view name, double value);
void SetGaugeMax(std::string_view name, double value);
/// Observes into a histogram with LatencyBucketsSeconds().
void ObserveLatency(std::string_view name, double seconds);
/// Observes into a histogram with SizeBuckets().
void ObserveSize(std::string_view name, double value);

/// Samples the process peak resident set size (Linux: VmHWM from
/// /proc/self/status) into the `process.peak_rss_bytes` gauge. No-op on
/// platforms without that interface.
void UpdatePeakRssGauge();

}  // namespace arda::metrics

#endif  // ARDA_UTIL_METRICS_H_
