#ifndef ARDA_UTIL_LOG_H_
#define ARDA_UTIL_LOG_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

/// \file
/// Structured, leveled logging for the long-lived service (PR 9).
///
/// Every record is a single line on stderr. Two formats:
///
/// - `text` (the default — the always-safe fallback matching the repo's
///   historical plain-text diagnostics):
///   `[WARN] service.slow_request request_id=c3-7 elapsed_ms=912.4`
/// - `json` (for log aggregators): one RFC 8259 object per line with
///   fixed envelope fields `ts` (wall clock, seconds since the Unix
///   epoch), `mono` (monotonic seconds since process start — subtraction
///   between records is immune to wall-clock steps), `level`, `event`,
///   then the record's own fields in call order.
///
/// The default level is `warn`: the one-shot CLI and the benches stay
/// quiet unless something is wrong. The service turns request logging on
/// with `--log-level=info`. `ARDA_LOG=<level>` is the environment
/// spelling; like `ARDA_SIMD` / `ARDA_FAULT` it is read exactly once per
/// process (`InitFromEnvironment` from `main`, idempotent, before worker
/// threads start — docs/observability.md).
///
/// Logging is observation-only and must never feed back into results
/// (the determinism contract in DESIGN.md covers it): a record is
/// rendered and written, nothing more. Writes take one mutex so
/// concurrent records never interleave mid-line.

namespace arda::log {

enum class Level : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// "debug" / "info" / "warn" / "error" / "off".
const char* LevelName(Level level);

enum class Format : int {
  kText = 0,
  kJson = 1,
};

/// One key/value pair in a record. Values keep their type in the JSON
/// format (numbers and booleans unquoted); the text format renders
/// `key=value` with strings unescaped.
class Field {
 public:
  static Field Str(std::string_view key, std::string_view value);
  static Field Int(std::string_view key, int64_t value);
  static Field Uint(std::string_view key, uint64_t value);
  static Field F64(std::string_view key, double value);
  static Field Bool(std::string_view key, bool value);

  void AppendText(std::string* out) const;
  void AppendJson(std::string* out) const;
  const std::string& key() const { return key_; }

 private:
  enum class Kind { kString, kInt, kUint, kDouble, kBool };
  Field(std::string_view key, Kind kind) : key_(key), kind_(kind) {}

  std::string key_;
  Kind kind_;
  std::string str_;
  int64_t int_ = 0;
  uint64_t uint_ = 0;
  double double_ = 0.0;
  bool bool_ = false;
};

/// Current threshold: records below it are dropped before rendering.
Level GlobalLevel();
void SetLevel(Level level);
/// Accepts the level names above; returns false (and changes nothing)
/// on an unknown spelling.
bool SetLevelFromSpec(std::string_view spec);

Format GlobalFormat();
void SetFormat(Format format);
/// "text" or "json"; returns false on an unknown spelling.
bool SetFormatFromSpec(std::string_view spec);

/// Reads `ARDA_LOG` (a level name) once per process; idempotent.
void InitFromEnvironment();

/// Cheap pre-check for call sites that build expensive fields.
inline bool Enabled(Level level) {
  return static_cast<int>(level) >= static_cast<int>(GlobalLevel());
}

/// Renders and writes one record (one line) if `level` passes the
/// threshold. `event` follows the metric naming convention: lower-case
/// dotted path, e.g. `service.request`, `service.slow_request`.
void Log(Level level, std::string_view event,
         std::initializer_list<Field> fields = {});
void Log(Level level, std::string_view event,
         const std::vector<Field>& fields);

inline void Debug(std::string_view event,
                  std::initializer_list<Field> fields = {}) {
  Log(Level::kDebug, event, fields);
}
inline void Info(std::string_view event,
                 std::initializer_list<Field> fields = {}) {
  Log(Level::kInfo, event, fields);
}
inline void Warn(std::string_view event,
                 std::initializer_list<Field> fields = {}) {
  Log(Level::kWarn, event, fields);
}
inline void Error(std::string_view event,
                  std::initializer_list<Field> fields = {}) {
  Log(Level::kError, event, fields);
}

/// Redirects rendered lines (without the trailing newline) to `sink`
/// instead of stderr; pass nullptr to restore stderr. Test-only.
void SetSinkForTest(std::function<void(const std::string&)> sink);

/// Monotonic seconds since process start (first use). Exposed so other
/// subsystems can stamp the same clock the `mono` field uses.
double MonotonicSeconds();

}  // namespace arda::log

#endif  // ARDA_UTIL_LOG_H_
