#ifndef ARDA_UTIL_JSON_H_
#define ARDA_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

/// \file
/// Minimal JSON value model and recursive-descent parser, the inverse of
/// the repo's emitters (which all escape through arda::JsonEscape). Used
/// by the augmentation service to decode per-request configuration and by
/// clients/tests to decode responses. Strict by design: no comments, no
/// trailing commas, no NaN/Infinity literals — exactly RFC 8259 minus
/// the freedom to be lenient, so a request that parses here round-trips
/// byte-identically through the emitters.
///
/// Numbers are held as double (plus an exact-int64 flag for integral
/// values in range, so seeds and counts survive). Object member order is
/// not preserved (members sort by key); none of the protocol messages
/// depend on member order.

namespace arda::json {

enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

/// One parsed JSON value. Cheap to move, expensive to copy (subtrees are
/// owned by value).
class Value {
 public:
  Value() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  /// True when the number was an integer literal representable in int64.
  bool IsExactInt64() const { return exact_int_; }
  int64_t AsInt64() const { return int_; }
  const std::string& AsString() const { return string_; }
  const std::vector<Value>& AsArray() const { return array_; }
  const std::map<std::string, Value>& AsObject() const { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* Find(std::string_view key) const;

  /// Typed member accessors with defaults: missing members (or a non-
  /// object receiver) return `fallback`; present members of the wrong
  /// type return a Status via the Get* forms below.
  std::string StringOr(std::string_view key, std::string fallback) const;
  double NumberOr(std::string_view key, double fallback) const;
  int64_t IntOr(std::string_view key, int64_t fallback) const;
  bool BoolOr(std::string_view key, bool fallback) const;

  static Value MakeNull();
  static Value MakeBool(bool b);
  static Value MakeNumber(double d);
  static Value MakeInt(int64_t i);
  static Value MakeString(std::string s);
  static Value MakeArray(std::vector<Value> items);
  static Value MakeObject(std::map<std::string, Value> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  int64_t int_ = 0;
  bool exact_int_ = false;
  std::string string_;
  std::vector<Value> array_;
  std::map<std::string, Value> object_;
};

/// Parses one JSON document; trailing non-whitespace is an error. The
/// parser guards against pathological nesting (InvalidArgument beyond
/// depth 64) so a hostile request cannot overflow the service's stack.
Result<Value> Parse(std::string_view text);

/// Serializes a Value back to compact JSON (object members in sorted key
/// order, strings escaped via arda::JsonEscape). Exact-int64 numbers
/// print as integers; other numbers with %.17g so doubles round-trip.
std::string Serialize(const Value& value);

}  // namespace arda::json

#endif  // ARDA_UTIL_JSON_H_
