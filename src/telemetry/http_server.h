#ifndef ARDA_TELEMETRY_HTTP_SERVER_H_
#define ARDA_TELEMETRY_HTTP_SERVER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "service/wire.h"
#include "util/status.h"

/// \file
/// Minimal embedded HTTP/1.1 endpoint for telemetry (PR 9): one thread,
/// one connection at a time, GET only, `Connection: close` on every
/// response — deliberately the smallest server that an off-the-shelf
/// Prometheus scraper, `curl`, or a load-balancer health check can talk
/// to. It reuses the service's socket plumbing (`service/wire.h`:
/// ListenLocal / AcceptInterruptible / RecvSome / SendAll) including the
/// wake-pipe shutdown idiom, and binds 127.0.0.1 only, like the service
/// socket.
///
/// Routes:
///   GET /metrics  -> 200, Prometheus text exposition (collect hook)
///   GET /healthz  -> 200 "ok" while the process is up (liveness)
///   GET /readyz   -> 200 "ready", or 503 + reason (readiness hook)
/// Anything else  -> 404; non-GET methods -> 405; oversized or
/// malformed request heads -> 400. Request heads are capped at 8 KiB.
///
/// This is the first increment of the roadmap's "HTTP front end"
/// headroom item: scrape-sized traffic only — augmentation requests stay
/// on the framed JSON protocol (docs/service.md).

namespace arda::telemetry {

class HttpServer {
 public:
  struct Hooks {
    /// Returns the /metrics body (Prometheus text exposition). Called
    /// once per scrape, on the server thread.
    std::function<std::string()> collect_metrics;
    /// Readiness probe: true when ready; on false, `reason` (may be
    /// null-checked by the caller) carries a short explanation for the
    /// 503 body. Unset means "always ready".
    std::function<bool(std::string* reason)> ready;
  };

  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port) and starts the
  /// serving thread.
  Status Start(uint16_t port, Hooks hooks);

  /// The bound port; 0 before Start.
  uint16_t port() const { return port_; }

  /// Wakes the serving thread, joins it, closes the listener.
  /// Idempotent.
  void Stop();

  /// Routes one request path in-process — the unit-test surface and the
  /// single implementation behind the socket loop. Returns the body;
  /// `status_out` gets the HTTP status code, `content_type_out` the
  /// Content-Type.
  std::string HandlePath(const std::string& path, int* status_out,
                         std::string* content_type_out);

 private:
  void ServeLoop();
  void HandleConnection(service::Socket conn);

  service::Socket listener_;
  uint16_t port_ = 0;
  Hooks hooks_;
  std::thread thread_;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  bool started_ = false;
};

}  // namespace arda::telemetry

#endif  // ARDA_TELEMETRY_HTTP_SERVER_H_
