#ifndef ARDA_TELEMETRY_EXPOSITION_H_
#define ARDA_TELEMETRY_EXPOSITION_H_

#include <string>
#include <string_view>

#include "util/metrics.h"

/// \file
/// Prometheus text exposition (version 0.0.4) of the process metrics
/// registry — the standard-scraper half of the telemetry subsystem
/// (PR 9, docs/observability.md). The repo's dotted metric names
/// (`service.requests_total`) are sanitized to the Prometheus charset
/// (`service_requests_total`); the original dotted name rides along in
/// the `# HELP` line so the two spellings stay correlatable.
///
/// Histograms render with CUMULATIVE `le` buckets (the registry stores
/// per-bucket counts), a `+Inf` bucket equal to `_count`, and `_sum` /
/// `_count` series. Bucket upper bounds go through
/// `metrics::BucketBoundLabel` — the same helper `MetricsToJson` uses —
/// so the JSON report and the exposition agree on every `le` edge
/// byte-for-byte (tests/telemetry_test.cc pins this).

namespace arda::telemetry {

/// Content-Type of the rendered document.
inline constexpr char kExpositionContentType[] =
    "text/plain; version=0.0.4; charset=utf-8";

/// Maps a repo metric name onto the Prometheus name charset
/// [a-zA-Z_:][a-zA-Z0-9_:]*: every other byte becomes '_', and a leading
/// digit gets a '_' prefix.
std::string SanitizeMetricName(std::string_view name);

/// Escapes a label value for the exposition format: backslash, double
/// quote and newline become \\, \" and \n.
std::string EscapeLabelValue(std::string_view value);

/// Renders the whole snapshot as one exposition document (counters,
/// gauges, histograms; series sorted by name within each kind).
std::string RenderPrometheus(const metrics::MetricsSnapshot& snapshot);

}  // namespace arda::telemetry

#endif  // ARDA_TELEMETRY_EXPOSITION_H_
