#include "telemetry/http_server.h"

#include <cstring>

#include "telemetry/exposition.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/string_util.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define ARDA_TELEMETRY_HAVE_PIPE 1
#endif

namespace arda::telemetry {

namespace {

/// Upper bound on a request head (request line + headers). A scraper's
/// GET fits in a fraction of this; anything bigger is a client bug.
constexpr size_t kMaxRequestHeadBytes = 8 * 1024;

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
  }
  return "Unknown";
}

std::string BuildResponse(int status, const std::string& content_type,
                          const std::string& body) {
  std::string out = StrFormat("HTTP/1.1 %d %s\r\n", status,
                              ReasonPhrase(status));
  out += "Content-Type: " + content_type + "\r\n";
  out += StrFormat("Content-Length: %zu\r\n", body.size());
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start(uint16_t port, Hooks hooks) {
  if (started_) return Status::FailedPrecondition("already started");
#if defined(ARDA_TELEMETRY_HAVE_PIPE)
  int fds[2];
  if (::pipe(fds) != 0) {
    return Status::IoError("pipe for telemetry wakeup failed");
  }
  wake_read_fd_ = fds[0];
  wake_write_fd_ = fds[1];
#endif
  ARDA_ASSIGN_OR_RETURN(listener_, service::ListenLocal(port));
  ARDA_ASSIGN_OR_RETURN(port_, service::BoundPort(listener_));
  hooks_ = std::move(hooks);
  started_ = true;
  thread_ = std::thread([this] { ServeLoop(); });
  log::Info("telemetry.listening",
            {log::Field::Int("port", static_cast<int64_t>(port_))});
  return Status::Ok();
}

void HttpServer::Stop() {
  if (started_) {
#if defined(ARDA_TELEMETRY_HAVE_PIPE)
    if (wake_write_fd_ >= 0) {
      [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, "x", 1);
    }
#endif
    if (thread_.joinable()) thread_.join();
    listener_.Close();
    started_ = false;
  }
#if defined(ARDA_TELEMETRY_HAVE_PIPE)
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  wake_read_fd_ = -1;
  wake_write_fd_ = -1;
#endif
}

std::string HttpServer::HandlePath(const std::string& path,
                                   int* status_out,
                                   std::string* content_type_out) {
  *content_type_out = "text/plain; charset=utf-8";
  if (path == "/metrics") {
    *status_out = 200;
    *content_type_out = kExpositionContentType;
    metrics::IncrementCounter("telemetry.scrapes_total");
    return hooks_.collect_metrics
               ? hooks_.collect_metrics()
               : RenderPrometheus(metrics::GlobalRegistry().Snapshot());
  }
  if (path == "/healthz") {
    *status_out = 200;
    return "ok\n";
  }
  if (path == "/readyz") {
    std::string reason;
    const bool ready = !hooks_.ready || hooks_.ready(&reason);
    *status_out = ready ? 200 : 503;
    if (ready) return "ready\n";
    return reason.empty() ? "not ready\n" : reason + "\n";
  }
  *status_out = 404;
  return "not found\n";
}

void HttpServer::ServeLoop() {
  for (;;) {
    Result<service::Socket> conn =
        service::AcceptInterruptible(listener_, wake_read_fd_);
    if (!conn.ok()) {
      // The wake pipe (shutdown) and real socket errors both end the
      // loop; the endpoint is best-effort and never takes the daemon
      // down with it.
      if (conn.status().code() != StatusCode::kFailedPrecondition) {
        log::Warn("telemetry.accept_error",
                  {log::Field::Str("error", conn.status().message())});
      }
      return;
    }
    HandleConnection(std::move(conn).value());
  }
}

void HttpServer::HandleConnection(service::Socket conn) {
  // Read until the end of the request head. One connection at a time on
  // the server thread: a scraper request is a handful of bytes and the
  // response is Connection: close, so serialization is the simplest
  // correct policy.
  std::string head;
  char buf[1024];
  bool complete = false;
  while (head.size() < kMaxRequestHeadBytes) {
    Result<size_t> n =
        service::RecvSome(conn.fd(), wake_read_fd_, buf, sizeof(buf));
    if (!n.ok()) return;  // peer vanished or shutdown wake: drop it
    head.append(buf, n.value());
    if (head.find("\r\n\r\n") != std::string::npos ||
        head.find("\n\n") != std::string::npos) {
      complete = true;
      break;
    }
  }

  int status = 400;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body = "bad request\n";
  if (complete) {
    // Request line: METHOD SP PATH SP VERSION.
    const size_t eol = head.find_first_of("\r\n");
    const std::string line = head.substr(0, eol);
    const size_t sp1 = line.find(' ');
    const size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    if (sp1 != std::string::npos && sp2 != std::string::npos) {
      const std::string method = line.substr(0, sp1);
      std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const size_t query = path.find('?');
      if (query != std::string::npos) path.resize(query);
      if (method != "GET") {
        status = 405;
        body = "method not allowed\n";
      } else {
        body = HandlePath(path, &status, &content_type);
      }
    }
  }
  if (!service::SendAll(conn.fd(), BuildResponse(status, content_type, body))
           .ok()) {
    log::Debug("telemetry.send_failed");
  }
}

}  // namespace arda::telemetry
