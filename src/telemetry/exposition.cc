#include "telemetry/exposition.h"

#include <cctype>

#include "util/string_util.h"

namespace arda::telemetry {

namespace {

bool ValidNameChar(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
      c == ':') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

void AppendHeader(std::string* out, const std::string& prom_name,
                  std::string_view repo_name, const char* type) {
  *out += "# HELP " + prom_name + " ARDA metric " +
          std::string(repo_name) + "\n";
  *out += "# TYPE " + prom_name + " " + type + "\n";
}

}  // namespace

std::string SanitizeMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    if (out.empty() && !ValidNameChar(c, /*first=*/true) &&
        ValidNameChar(c, /*first=*/false)) {
      out += '_';  // leading digit
    }
    out += ValidNameChar(c, /*first=*/out.empty()) ? c : '_';
  }
  if (out.empty()) out = "_";
  return out;
}

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string RenderPrometheus(const metrics::MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);

  for (const metrics::CounterSnapshot& c : snapshot.counters) {
    const std::string name = SanitizeMetricName(c.name);
    AppendHeader(&out, name, c.name, "counter");
    out += name +
           StrFormat(" %llu\n", static_cast<unsigned long long>(c.value));
  }

  for (const metrics::GaugeSnapshot& g : snapshot.gauges) {
    const std::string name = SanitizeMetricName(g.name);
    AppendHeader(&out, name, g.name, "gauge");
    out += name + StrFormat(" %.10g\n", g.value);
  }

  for (const metrics::HistogramSnapshot& h : snapshot.histograms) {
    const std::string name = SanitizeMetricName(h.name);
    AppendHeader(&out, name, h.name, "histogram");
    // The registry stores per-bucket counts; the exposition wants
    // cumulative ones.
    uint64_t cumulative = 0;
    for (size_t b = 0; b < h.bucket_counts.size(); ++b) {
      cumulative += h.bucket_counts[b];
      const std::string le = metrics::BucketBoundLabel(h.bounds, b);
      out += name + "_bucket{le=\"" + EscapeLabelValue(le) + "\"}" +
             StrFormat(" %llu\n",
                       static_cast<unsigned long long>(cumulative));
    }
    out += name + "_sum" + StrFormat(" %.10g\n", h.sum);
    out += name + "_count" +
           StrFormat(" %llu\n", static_cast<unsigned long long>(h.count));
  }

  return out;
}

}  // namespace arda::telemetry
