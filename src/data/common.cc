#include "data/common.h"

#include <algorithm>

#include "util/string_util.h"

namespace arda::data::internal {

void AddTableWithCandidate(Scenario* scenario, const std::string& table_name,
                           df::DataFrame table,
                           const std::vector<discovery::JoinKeyPair>& keys,
                           double score, bool is_signal) {
  Status st = scenario->repo.Add(table_name, std::move(table));
  ARDA_CHECK(st.ok());
  discovery::CandidateJoin candidate;
  candidate.foreign_table = table_name;
  candidate.keys = keys;
  candidate.score = score;
  scenario->candidates.push_back(std::move(candidate));
  if (is_signal) scenario->signal_tables.push_back(table_name);
}

std::string RandomCategory(size_t cardinality, Rng* rng) {
  return "cat_" + std::to_string(rng->UniformUint64(cardinality));
}

df::DataFrame MakeNoiseTable(const std::string& table_name,
                             const std::string& key_name,
                             const std::vector<std::string>& key_values,
                             df::DataType key_type, size_t numeric_cols,
                             size_t cat_cols, double coverage,
                             bool duplicate_keys, Rng* rng) {
  // Choose the covered subset of keys.
  std::vector<std::string> covered = key_values;
  rng->Shuffle(&covered);
  size_t keep = std::max<size_t>(
      1, static_cast<size_t>(coverage * static_cast<double>(covered.size())));
  covered.resize(std::min(keep, covered.size()));

  // Expand with duplicates to exercise one-to-many pre-aggregation.
  std::vector<std::string> rows = covered;
  if (duplicate_keys) {
    for (const std::string& key : covered) {
      size_t copies = static_cast<size_t>(rng->UniformInt(0, 2));
      for (size_t i = 0; i < copies; ++i) rows.push_back(key);
    }
    rng->Shuffle(&rows);
  }

  df::DataFrame table;
  df::Column key_col = df::Column::Empty(key_name, key_type);
  for (const std::string& value : rows) {
    switch (key_type) {
      case df::DataType::kInt64: {
        int64_t parsed = 0;
        ARDA_CHECK(ParseInt64(value, &parsed));
        key_col.AppendInt64(parsed);
        break;
      }
      case df::DataType::kDouble: {
        double parsed = 0.0;
        ARDA_CHECK(ParseDouble(value, &parsed));
        key_col.AppendDouble(parsed);
        break;
      }
      case df::DataType::kString:
        key_col.AppendString(value);
        break;
    }
  }
  Status st = table.AddColumn(std::move(key_col));
  ARDA_CHECK(st.ok());

  for (size_t c = 0; c < numeric_cols; ++c) {
    std::vector<double> values(rows.size());
    // Randomized distribution family and parameters per column.
    int family = static_cast<int>(rng->UniformUint64(3));
    double a = rng->Uniform(-5.0, 5.0);
    double b = rng->Uniform(0.5, 4.0);
    for (double& v : values) {
      switch (family) {
        case 0:
          v = rng->Normal(a, b);
          break;
        case 1:
          v = rng->Uniform(a, a + b * 3.0);
          break;
        default:
          v = static_cast<double>(rng->Poisson(b));
          break;
      }
    }
    st = table.AddColumn(df::Column::Double(
        StrFormat("%s_num%zu", table_name.c_str(), c), std::move(values)));
    ARDA_CHECK(st.ok());
  }
  for (size_t c = 0; c < cat_cols; ++c) {
    size_t cardinality = static_cast<size_t>(rng->UniformInt(2, 12));
    std::vector<std::string> values(rows.size());
    for (std::string& v : values) v = RandomCategory(cardinality, rng);
    st = table.AddColumn(df::Column::String(
        StrFormat("%s_cat%zu", table_name.c_str(), c), std::move(values)));
    ARDA_CHECK(st.ok());
  }
  return table;
}

std::vector<std::string> KeyDomain(const df::DataFrame& base,
                                   const std::string& column) {
  return base.col(column).DistinctValuesAsString();
}

void AddNoiseTables(Scenario* scenario, const std::string& base_key_column,
                    size_t count, Rng* rng) {
  std::vector<std::string> domain =
      KeyDomain(scenario->base, base_key_column);
  df::DataType key_type = scenario->base.col(base_key_column).type();
  for (size_t i = 0; i < count; ++i) {
    std::string name =
        StrFormat("%s_noise_%s_%zu", scenario->name.c_str(),
                  base_key_column.c_str(), i);
    size_t numeric_cols = static_cast<size_t>(rng->UniformInt(1, 4));
    size_t cat_cols = static_cast<size_t>(rng->UniformInt(0, 2));
    double coverage = rng->Uniform(0.55, 1.0);
    bool duplicates = rng->Bernoulli(0.3);
    df::DataFrame table =
        MakeNoiseTable(name, base_key_column, domain, key_type, numeric_cols,
                       cat_cols, coverage, duplicates, rng);
    AddTableWithCandidate(
        scenario, name, std::move(table),
        {discovery::JoinKeyPair{base_key_column, base_key_column,
                                discovery::KeyKind::kHard}},
        /*score=*/rng->Uniform(0.2, 0.7), /*is_signal=*/false);
  }
}

}  // namespace arda::data::internal
