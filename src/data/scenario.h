#ifndef ARDA_DATA_SCENARIO_H_
#define ARDA_DATA_SCENARIO_H_

#include <string>
#include <vector>

#include "core/arda.h"
#include "dataframe/data_frame.h"
#include "discovery/candidate.h"
#include "discovery/repository.h"
#include "ml/dataset.h"

namespace arda::data {

/// A complete augmentation scenario: the stand-in for one of the paper's
/// real-world evaluation datasets. The repository holds the base table
/// plus joinable foreign tables — a few carrying planted signal, the rest
/// noise — and `candidates` is what a join-discovery system would hand
/// ARDA.
struct Scenario {
  std::string name;
  df::DataFrame base;
  std::string target_column;
  ml::TaskType task = ml::TaskType::kRegression;
  discovery::DataRepository repo;
  std::vector<discovery::CandidateJoin> candidates;
  /// Ground truth: names of foreign tables that actually carry signal.
  std::vector<std::string> signal_tables;

  /// Packages the scenario as an ARDA input.
  core::AugmentationTask MakeTask() const {
    core::AugmentationTask task_out;
    task_out.base = base;
    task_out.target_column = target_column;
    task_out.task = task;
    task_out.repo = &repo;
    task_out.candidates = candidates;
    task_out.base_table_name = name;
    return task_out;
  }
};

/// A micro-benchmark dataset (Section 7.2): a fully numeric dataset whose
/// trailing features are known injected noise, so selector filtering
/// quality can be measured exactly.
struct MicroBenchmark {
  std::string name;
  ml::Dataset data;
  /// Features [0, num_original) are original; the rest are planted noise.
  size_t num_original = 0;

  bool IsNoiseFeature(size_t index) const { return index >= num_original; }
};

}  // namespace arda::data

#endif  // ARDA_DATA_SCENARIO_H_
