#include <cmath>

#include "data/common.h"
#include "data/generators.h"

namespace arda::data {

namespace {

using internal::AddNoiseTables;
using internal::AddTableWithCandidate;

constexpr const char* kStates[] = {"ny", "ca", "tx", "fl", "il",
                                   "pa", "oh", "ga", "nc", "mi"};

}  // namespace

Scenario MakePovertyScenario(uint64_t seed, ScenarioScale scale) {
  Rng rng(seed ^ 0x9017ULL);
  Scenario scenario;
  scenario.name = "poverty";
  scenario.task = ml::TaskType::kRegression;
  scenario.target_column = "poverty_rate";

  const size_t num_counties = scale == ScenarioScale::kFull ? 750 : 120;
  const size_t noise_tables = scale == ScenarioScale::kFull ? 35 : 4;

  // Hidden per-county socio-economic indicators, stored in separate
  // foreign tables keyed by FIPS code (pure hard joins).
  std::vector<double> unemployment(num_counties);
  std::vector<double> education(num_counties);
  std::vector<double> income(num_counties);
  std::vector<double> pop_change(num_counties);
  for (size_t c = 0; c < num_counties; ++c) {
    unemployment[c] = std::max(0.5, rng.Normal(6.0, 2.5));
    education[c] = std::clamp(rng.Normal(0.55, 0.15), 0.1, 0.95);
    income[c] = std::max(18.0, rng.Normal(52.0, 14.0));  // $k
    pop_change[c] = rng.Normal(0.0, 3.0);
  }

  // Base table: FIPS id, state, rural flag, and the target.
  std::vector<int64_t> fips(num_counties);
  std::vector<std::string> state(num_counties);
  std::vector<int64_t> rural(num_counties);
  std::vector<double> rate(num_counties);
  for (size_t c = 0; c < num_counties; ++c) {
    fips[c] = 10000 + static_cast<int64_t>(c);
    state[c] = kStates[rng.UniformUint64(10)];
    rural[c] = rng.Bernoulli(0.4) ? 1 : 0;
    rate[c] = 4.0 + 1.1 * unemployment[c] - 9.0 * education[c] -
              0.09 * income[c] - 0.35 * pop_change[c] +
              1.5 * static_cast<double>(rural[c]) + rng.Normal(0.0, 0.8);
  }
  Status st;
  st = scenario.base.AddColumn(df::Column::Int64("fips", fips));
  ARDA_CHECK(st.ok());
  st = scenario.base.AddColumn(df::Column::String("state", state));
  ARDA_CHECK(st.ok());
  st = scenario.base.AddColumn(df::Column::Int64("rural", rural));
  ARDA_CHECK(st.ok());
  st = scenario.base.AddColumn(df::Column::Double("poverty_rate", rate));
  ARDA_CHECK(st.ok());

  // Signal tables, one indicator each (plus a correlated spare column).
  auto add_indicator = [&](const std::string& name,
                           const std::vector<double>& values,
                           const std::string& column, double score) {
    df::DataFrame table;
    Status status = table.AddColumn(df::Column::Int64("fips", fips));
    ARDA_CHECK(status.ok());
    status = table.AddColumn(df::Column::Double(column, values));
    ARDA_CHECK(status.ok());
    std::vector<double> spare(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      spare[i] = values[i] * rng.Uniform(0.8, 1.2) + rng.Normal(0.0, 0.5);
    }
    status = table.AddColumn(
        df::Column::Double(column + "_trailing_year", spare));
    ARDA_CHECK(status.ok());
    AddTableWithCandidate(
        &scenario, name, std::move(table),
        {discovery::JoinKeyPair{"fips", "fips", discovery::KeyKind::kHard}},
        score, /*is_signal=*/true);
  };
  add_indicator("unemployment", unemployment, "unemployment_rate", 0.97);
  add_indicator("education", education, "college_share", 0.94);
  add_indicator("income", income, "median_income", 0.91);
  add_indicator("population", pop_change, "population_change", 0.88);

  AddNoiseTables(&scenario, "fips", noise_tables - noise_tables / 4, &rng);
  AddNoiseTables(&scenario, "state", noise_tables / 4, &rng);

  Status add_base = scenario.repo.Add(scenario.name, scenario.base);
  ARDA_CHECK(add_base.ok());
  return scenario;
}

}  // namespace arda::data
