#include <cmath>

#include "data/common.h"
#include "data/generators.h"

namespace arda::data {

namespace {

using internal::AddNoiseTables;
using internal::AddTableWithCandidate;

// Smooth latent process sampled at arbitrary times.
double Latent(double t, double phase, double period) {
  return std::sin(2.0 * M_PI * (t + phase) / period) +
         0.4 * std::sin(2.0 * M_PI * (t + phase) / (period * 3.7));
}

}  // namespace

Scenario MakePickupScenario(uint64_t seed, ScenarioScale scale) {
  Rng rng(seed ^ 0x9B1CULL);
  Scenario scenario;
  scenario.name = "pickup";
  scenario.task = ml::TaskType::kRegression;
  scenario.target_column = "pickups";

  const size_t num_hours = scale == ScenarioScale::kFull ? 840 : 120;
  const size_t noise_tables = scale == ScenarioScale::kFull ? 21 : 3;

  // Base table: one row per hour. The target depends on two latent
  // continuous-time processes (flight arrivals, weather discomfort) that
  // the foreign tables record on *misaligned* clocks, so the base hour
  // never exactly matches a foreign timestamp: the two-way nearest-
  // neighbour interpolation recovers the latent value best, plain nearest
  // is second, and an exact hard join finds no matches at all (Fig. 5).
  std::vector<double> hour_col(num_hours);
  std::vector<int64_t> hod_col(num_hours);
  std::vector<int64_t> dow_col(num_hours);
  std::vector<double> pickups(num_hours);
  const double flight_phase = rng.Uniform(0.0, 24.0);
  const double weather_phase = rng.Uniform(0.0, 24.0);
  for (size_t h = 0; h < num_hours; ++h) {
    double t = static_cast<double>(h);
    hour_col[h] = t;
    hod_col[h] = static_cast<int64_t>(h % 24);
    dow_col[h] = static_cast<int64_t>((h / 24) % 7);
    double rush = (h % 24 >= 7 && h % 24 <= 9) ||
                          (h % 24 >= 16 && h % 24 <= 19)
                      ? 1.0
                      : 0.0;
    double flights = 20.0 + 12.0 * Latent(t, flight_phase, 24.0);
    double discomfort = 2.0 * Latent(t, weather_phase, 31.0);
    pickups[h] = 25.0 + 9.0 * rush + 0.8 * flights - 5.0 * discomfort +
                 rng.Normal(0.0, 2.0);
  }
  Status st;
  st = scenario.base.AddColumn(df::Column::Double("hour", hour_col));
  ARDA_CHECK(st.ok());
  st = scenario.base.AddColumn(df::Column::Int64("hour_of_day", hod_col));
  ARDA_CHECK(st.ok());
  st = scenario.base.AddColumn(df::Column::Int64("day_of_week", dow_col));
  ARDA_CHECK(st.ok());
  st = scenario.base.AddColumn(df::Column::Double("pickups", pickups));
  ARDA_CHECK(st.ok());

  // Signal table 1: FLIGHTS sampled every 1.37 h (misaligned clock).
  {
    df::DataFrame flights;
    std::vector<double> f_time, f_value, f_delay;
    for (double t = 0.21; t < static_cast<double>(num_hours); t += 1.37) {
      f_time.push_back(t);
      f_value.push_back(20.0 + 12.0 * Latent(t, flight_phase, 24.0) +
                        rng.Normal(0.0, 0.5));
      f_delay.push_back(std::max(0.0, rng.Normal(10.0, 6.0)));
    }
    st = flights.AddColumn(df::Column::Double("hour", f_time));
    ARDA_CHECK(st.ok());
    st = flights.AddColumn(df::Column::Double("arrivals", f_value));
    ARDA_CHECK(st.ok());
    st = flights.AddColumn(df::Column::Double("avg_delay", f_delay));
    ARDA_CHECK(st.ok());
    AddTableWithCandidate(
        &scenario, "flights", std::move(flights),
        {discovery::JoinKeyPair{"hour", "hour", discovery::KeyKind::kSoft}},
        /*score=*/0.95, /*is_signal=*/true);
  }

  // Signal table 2: WEATHER sampled every 0.77 h.
  {
    df::DataFrame weather;
    std::vector<double> w_time, w_value, w_wind;
    for (double t = 0.4; t < static_cast<double>(num_hours); t += 0.77) {
      w_time.push_back(t);
      w_value.push_back(2.0 * Latent(t, weather_phase, 31.0) +
                        rng.Normal(0.0, 0.1));
      w_wind.push_back(std::max(0.0, rng.Normal(12.0, 5.0)));
    }
    st = weather.AddColumn(df::Column::Double("hour", w_time));
    ARDA_CHECK(st.ok());
    st = weather.AddColumn(df::Column::Double("discomfort", w_value));
    ARDA_CHECK(st.ok());
    st = weather.AddColumn(df::Column::Double("wind", w_wind));
    ARDA_CHECK(st.ok());
    AddTableWithCandidate(
        &scenario, "weather", std::move(weather),
        {discovery::JoinKeyPair{"hour", "hour", discovery::KeyKind::kSoft}},
        /*score=*/0.9, /*is_signal=*/true);
  }

  AddNoiseTables(&scenario, "hour", noise_tables, &rng);

  Status add_base = scenario.repo.Add(scenario.name, scenario.base);
  ARDA_CHECK(add_base.ok());
  return scenario;
}

}  // namespace arda::data
