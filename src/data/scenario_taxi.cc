#include <cmath>

#include "data/common.h"
#include "data/generators.h"
#include "util/string_util.h"

namespace arda::data {

namespace {

using internal::AddNoiseTables;
using internal::AddTableWithCandidate;

constexpr const char* kBoroughs[] = {"manhattan", "brooklyn", "queens",
                                     "bronx", "staten_island"};

}  // namespace

Scenario MakeTaxiScenario(uint64_t seed, ScenarioScale scale) {
  Rng rng(seed ^ 0x7A71ULL);
  Scenario scenario;
  scenario.name = "taxi";
  scenario.task = ml::TaskType::kRegression;
  scenario.target_column = "trips";

  const size_t num_days = scale == ScenarioScale::kFull ? 140 : 30;
  const size_t num_boroughs = 5;
  const size_t noise_tables = scale == ScenarioScale::kFull ? 27 : 3;

  // Hidden hourly weather process; the base target depends on its *daily
  // aggregate*, which ARDA can only recover by time-resampling the hourly
  // WEATHER table onto the day-granularity base key.
  std::vector<double> hourly_temp(num_days * 24);
  std::vector<double> hourly_precip(num_days * 24);
  std::vector<bool> rainy(num_days);
  for (size_t d = 0; d < num_days; ++d) rainy[d] = rng.Bernoulli(0.3);
  for (size_t h = 0; h < hourly_temp.size(); ++h) {
    size_t day_idx = h / 24;
    double day = static_cast<double>(h) / 24.0;
    hourly_temp[h] = 15.0 + 10.0 * std::sin(day / 20.0) +
                     4.0 * std::sin(2.0 * M_PI * (static_cast<double>(h % 24) / 24.0)) +
                     rng.Normal(0.0, 1.5);
    // Rain arrives in day-long episodes: the *daily mean* is the strong
    // predictor, and any single hourly reading (e.g. what a naive hard
    // join at midnight picks up) is a noisy proxy — exactly the situation
    // time resampling is for.
    hourly_precip[h] =
        rainy[day_idx] ? std::max(0.0, rng.Normal(1.2, 0.8)) : 0.0;
  }
  auto daily_mean = [&](const std::vector<double>& hourly, size_t day) {
    double sum = 0.0;
    for (size_t h = 0; h < 24; ++h) sum += hourly[day * 24 + h];
    return sum / 24.0;
  };

  // Daily event scale per (day, borough).
  std::vector<double> event_scale(num_days * num_boroughs);
  for (double& v : event_scale) {
    v = rng.Bernoulli(0.15) ? rng.Uniform(2.0, 6.0) : 0.0;
  }

  // Base table: one row per (day, borough).
  std::vector<double> day_col;
  std::vector<std::string> borough_col;
  std::vector<int64_t> dow_col;
  std::vector<double> fleet_col;
  std::vector<double> trips_col;
  for (size_t day = 0; day < num_days; ++day) {
    double temp_d = daily_mean(hourly_temp, day);
    double precip_d = daily_mean(hourly_precip, day);
    for (size_t b = 0; b < num_boroughs; ++b) {
      double fleet = rng.Uniform(50.0, 150.0);
      double borough_effect = 8.0 * static_cast<double>(b);
      double dow = static_cast<double>(day % 7);
      double trips = 60.0 + borough_effect + 0.25 * fleet +
                     5.0 * std::sin(2.0 * M_PI * dow / 7.0) +
                     1.1 * temp_d - 7.0 * precip_d +
                     4.0 * event_scale[day * num_boroughs + b] +
                     rng.Normal(0.0, 3.0);
      day_col.push_back(static_cast<double>(day));
      borough_col.push_back(kBoroughs[b]);
      dow_col.push_back(static_cast<int64_t>(day) % 7);
      fleet_col.push_back(fleet);
      trips_col.push_back(trips);
    }
  }
  Status st;
  st = scenario.base.AddColumn(df::Column::Double("day", day_col));
  ARDA_CHECK(st.ok());
  st = scenario.base.AddColumn(df::Column::String("borough", borough_col));
  ARDA_CHECK(st.ok());
  st = scenario.base.AddColumn(df::Column::Int64("day_of_week", dow_col));
  ARDA_CHECK(st.ok());
  st = scenario.base.AddColumn(df::Column::Double("fleet_size", fleet_col));
  ARDA_CHECK(st.ok());
  st = scenario.base.AddColumn(df::Column::Double("trips", trips_col));
  ARDA_CHECK(st.ok());

  // Signal table 1: WEATHER, hourly granularity, soft time key.
  {
    df::DataFrame weather;
    std::vector<double> time_col(num_days * 24);
    std::vector<double> temp_col(num_days * 24);
    std::vector<double> precip_col(num_days * 24);
    for (size_t h = 0; h < time_col.size(); ++h) {
      time_col[h] = static_cast<double>(h) / 24.0;  // day units
      temp_col[h] = hourly_temp[h];
      precip_col[h] = hourly_precip[h];
    }
    st = weather.AddColumn(df::Column::Double("day", time_col));
    ARDA_CHECK(st.ok());
    st = weather.AddColumn(df::Column::Double("temperature", temp_col));
    ARDA_CHECK(st.ok());
    st = weather.AddColumn(df::Column::Double("precipitation", precip_col));
    ARDA_CHECK(st.ok());
    AddTableWithCandidate(
        &scenario, "weather", std::move(weather),
        {discovery::JoinKeyPair{"day", "day", discovery::KeyKind::kSoft}},
        /*score=*/0.95, /*is_signal=*/true);
  }

  // Signal table 2: EVENTS, composite hard key (day, borough).
  {
    df::DataFrame events;
    std::vector<double> e_day;
    std::vector<std::string> e_borough;
    std::vector<double> e_scale;
    std::vector<std::string> e_kind;
    for (size_t day = 0; day < num_days; ++day) {
      for (size_t b = 0; b < num_boroughs; ++b) {
        double scale_v = event_scale[day * num_boroughs + b];
        if (scale_v == 0.0 && !rng.Bernoulli(0.3)) continue;  // sparse table
        e_day.push_back(static_cast<double>(day));
        e_borough.push_back(kBoroughs[b]);
        e_scale.push_back(scale_v);
        e_kind.push_back(scale_v > 4.0 ? "stadium" : "street_fair");
      }
    }
    st = events.AddColumn(df::Column::Double("day", e_day));
    ARDA_CHECK(st.ok());
    st = events.AddColumn(df::Column::String("borough", e_borough));
    ARDA_CHECK(st.ok());
    st = events.AddColumn(df::Column::Double("event_scale", e_scale));
    ARDA_CHECK(st.ok());
    st = events.AddColumn(df::Column::String("event_kind", e_kind));
    ARDA_CHECK(st.ok());
    AddTableWithCandidate(
        &scenario, "events", std::move(events),
        {discovery::JoinKeyPair{"day", "day", discovery::KeyKind::kHard},
         discovery::JoinKeyPair{"borough", "borough",
                                discovery::KeyKind::kHard}},
        /*score=*/0.9, /*is_signal=*/true);
  }

  // Noise tables on both keys.
  AddNoiseTables(&scenario, "day", noise_tables / 2 + noise_tables % 2,
                 &rng);
  AddNoiseTables(&scenario, "borough", noise_tables / 2, &rng);

  Status add_base = scenario.repo.Add(scenario.name, scenario.base);
  ARDA_CHECK(add_base.ok());
  return scenario;
}

}  // namespace arda::data
