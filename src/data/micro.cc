#include <cmath>

#include "data/generators.h"
#include "util/string_util.h"

namespace arda::data {

size_t InjectNoiseFeatures(ml::Dataset* data, double multiplier, Rng* rng) {
  const size_t n = data->NumRows();
  const size_t d = data->NumFeatures();
  const size_t extra = static_cast<size_t>(
      std::lround(multiplier * static_cast<double>(d)));
  if (extra == 0) return 0;
  la::Matrix noise(n, extra);
  for (size_t c = 0; c < extra; ++c) {
    // Random family with randomly initialized parameters, per the paper.
    int family = static_cast<int>(rng->UniformUint64(3));
    double a = rng->Uniform(-3.0, 3.0);
    double b = rng->Uniform(0.5, 3.0);
    for (size_t r = 0; r < n; ++r) {
      switch (family) {
        case 0:
          noise(r, c) = rng->Normal(a, b);
          break;
        case 1:
          noise(r, c) = rng->Uniform(a, a + 2.0 * b);
          break;
        default:
          noise(r, c) = rng->Bernoulli(0.5) ? a : a + b;
          break;
      }
    }
    data->feature_names.push_back(StrFormat("noise_%zu", c));
  }
  data->x = data->x.HStack(noise);
  return extra;
}

MicroBenchmark MakeKrakenBenchmark(uint64_t seed, double noise_multiplier) {
  Rng rng(seed ^ 0x6B7AULL);
  MicroBenchmark bench;
  bench.name = "kraken";
  bench.data.task = ml::TaskType::kClassification;

  // 568 healthy (label 0) and 432 failing (label 1) machines, matching
  // the paper's label counts. 24 anonymized sensors; roughly half carry
  // failure signal through linear and threshold effects, the rest are
  // machine-specific but uninformative readings.
  const size_t num_rows = 1000;
  const size_t num_fail = 432;
  const size_t num_sensors = 24;
  bench.data.x = la::Matrix(num_rows, num_sensors);
  bench.data.y.resize(num_rows);
  for (size_t r = 0; r < num_rows; ++r) {
    const bool failing = r < num_fail;
    bench.data.y[r] = failing ? 1.0 : 0.0;
    // Informative sensors: temperature, fan speed, correctable-error
    // counts, voltage ripple... shifted / skewed under failure. Overlaps
    // are wide — Kraken is a genuinely hard prediction problem in the
    // paper (best accuracies in the 60-80% range).
    bench.data.x(r, 0) = rng.Normal(failing ? 63.0 : 58.0, 8.0);
    bench.data.x(r, 1) = rng.Normal(failing ? 2950.0 : 3100.0, 350.0);
    bench.data.x(r, 2) = static_cast<double>(
        rng.Poisson(failing ? 3.2 : 2.0));
    bench.data.x(r, 3) = rng.Normal(0.0, failing ? 0.05 : 0.035);
    bench.data.x(r, 4) = rng.Normal(failing ? 0.68 : 0.58, 0.15);
    bench.data.x(r, 5) = rng.Bernoulli(failing ? 0.35 : 0.18) ? 1.0 : 0.0;
    bench.data.x(r, 6) =
        rng.Normal(failing ? 42.0 : 40.0, 8.0);  // weak signal
    bench.data.x(r, 7) = static_cast<double>(
        rng.Poisson(failing ? 2.6 : 2.2));  // weak signal
    // Uninformative sensors.
    for (size_t c = 8; c < num_sensors; ++c) {
      bench.data.x(r, c) = rng.Normal(0.0, 1.0 + 0.2 * static_cast<double>(c));
    }
  }
  // Shuffle rows so labels are not ordered.
  std::vector<size_t> order(num_rows);
  for (size_t i = 0; i < num_rows; ++i) order[i] = i;
  rng.Shuffle(&order);
  bench.data.x = bench.data.x.SelectRows(order);
  std::vector<double> y(num_rows);
  for (size_t i = 0; i < num_rows; ++i) y[i] = bench.data.y[order[i]];
  bench.data.y = std::move(y);
  for (size_t c = 0; c < num_sensors; ++c) {
    bench.data.feature_names.push_back(StrFormat("sensor_%zu", c));
  }

  bench.num_original = num_sensors;
  InjectNoiseFeatures(&bench.data, noise_multiplier, &rng);
  return bench;
}

MicroBenchmark MakeDigitsBenchmark(uint64_t seed, double noise_multiplier) {
  Rng rng(seed ^ 0xD161ULL);
  MicroBenchmark bench;
  bench.name = "digits";
  bench.data.task = ml::TaskType::kClassification;

  // 10 classes x ~180 rows on an 8x8 "pixel" grid. Each class gets a
  // smooth random stroke template; samples are noisy renderings, so a
  // subset of pixels (the strokes) is informative and border pixels are
  // nearly constant — mirroring sklearn's digits geometry.
  const size_t classes = 10;
  const size_t per_class = 180;
  const size_t grid = 8;
  const size_t num_rows = classes * per_class;
  const size_t num_pixels = grid * grid;

  // Class templates: a few Gaussian blobs per class on the grid.
  std::vector<std::vector<double>> templates(
      classes, std::vector<double>(num_pixels, 0.0));
  for (size_t cls = 0; cls < classes; ++cls) {
    size_t blobs = 2 + rng.UniformUint64(3);
    for (size_t b = 0; b < blobs; ++b) {
      double cx = rng.Uniform(1.0, 6.0);
      double cy = rng.Uniform(1.0, 6.0);
      double amp = rng.Uniform(5.0, 11.0);
      double width = rng.Uniform(0.8, 1.8);
      for (size_t px = 0; px < grid; ++px) {
        for (size_t py = 0; py < grid; ++py) {
          double dist_sq = (static_cast<double>(px) - cx) *
                               (static_cast<double>(px) - cx) +
                           (static_cast<double>(py) - cy) *
                               (static_cast<double>(py) - cy);
          templates[cls][px * grid + py] +=
              amp * std::exp(-dist_sq / (2.0 * width * width));
        }
      }
    }
  }

  bench.data.x = la::Matrix(num_rows, num_pixels);
  bench.data.y.resize(num_rows);
  std::vector<size_t> order(num_rows);
  for (size_t i = 0; i < num_rows; ++i) order[i] = i;
  rng.Shuffle(&order);
  for (size_t i = 0; i < num_rows; ++i) {
    size_t cls = order[i] / per_class;
    bench.data.y[i] = static_cast<double>(cls);
    for (size_t p = 0; p < num_pixels; ++p) {
      double v = templates[cls][p] + rng.Normal(0.0, 3.4);
      bench.data.x(i, p) = std::clamp(v, 0.0, 16.0);
    }
  }
  for (size_t p = 0; p < num_pixels; ++p) {
    bench.data.feature_names.push_back(
        StrFormat("pixel_%zu_%zu", p / grid, p % grid));
  }

  bench.num_original = num_pixels;
  InjectNoiseFeatures(&bench.data, noise_multiplier, &rng);
  return bench;
}

std::vector<Scenario> MakeAllScenarios(uint64_t seed, ScenarioScale scale) {
  std::vector<Scenario> scenarios;
  scenarios.push_back(MakePickupScenario(seed, scale));
  scenarios.push_back(MakePovertyScenario(seed, scale));
  scenarios.push_back(MakeSchoolScenario(/*large=*/true, seed, scale));
  scenarios.push_back(MakeSchoolScenario(/*large=*/false, seed, scale));
  scenarios.push_back(MakeTaxiScenario(seed, scale));
  return scenarios;
}

}  // namespace arda::data
