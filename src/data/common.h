#ifndef ARDA_DATA_COMMON_H_
#define ARDA_DATA_COMMON_H_

#include <string>
#include <vector>

#include "data/scenario.h"
#include "util/rng.h"

namespace arda::data::internal {

/// Registers `table` in the scenario repository and appends a candidate
/// join on the given key pair.
void AddTableWithCandidate(Scenario* scenario, const std::string& table_name,
                           df::DataFrame table,
                           const std::vector<discovery::JoinKeyPair>& keys,
                           double score, bool is_signal);

/// Builds a noise table: a foreign key column named `key_name` whose
/// values are drawn from `key_values` (covering roughly
/// `coverage` of them, with duplicates when `duplicate_keys`), plus
/// `numeric_cols` random numeric columns and `cat_cols` random categorical
/// columns. Column names embed `table_name` so they stay distinguishable
/// after joining.
df::DataFrame MakeNoiseTable(const std::string& table_name,
                             const std::string& key_name,
                             const std::vector<std::string>& key_values,
                             df::DataType key_type, size_t numeric_cols,
                             size_t cat_cols, double coverage,
                             bool duplicate_keys, Rng* rng);

/// Adds `count` noise tables (hard key on `base_key_column`) to the
/// scenario, with randomized shapes, and registers candidates with scores
/// below the signal tables'.
void AddNoiseTables(Scenario* scenario, const std::string& base_key_column,
                    size_t count, Rng* rng);

/// Distinct non-null values of a base column as strings (key domain for
/// noise tables).
std::vector<std::string> KeyDomain(const df::DataFrame& base,
                                   const std::string& column);

/// Random draw from a fixed list of category labels.
std::string RandomCategory(size_t cardinality, Rng* rng);

}  // namespace arda::data::internal

#endif  // ARDA_DATA_COMMON_H_
