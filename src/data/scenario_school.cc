#include <cmath>

#include "data/common.h"
#include "data/generators.h"
#include "util/string_util.h"

namespace arda::data {

namespace {

using internal::AddNoiseTables;
using internal::AddTableWithCandidate;

}  // namespace

Scenario MakeSchoolScenario(bool large, uint64_t seed, ScenarioScale scale) {
  Rng rng(seed ^ (large ? 0x5C11ULL : 0x5C05ULL));
  Scenario scenario;
  scenario.name = large ? "school_l" : "school_s";
  scenario.task = ml::TaskType::kClassification;
  scenario.target_column = "passed";

  const size_t num_schools = scale == ScenarioScale::kFull ? 650 : 150;
  const size_t num_districts = num_schools / 10 + 1;
  const size_t total_tables =
      scale == ScenarioScale::kFull ? (large ? 350 : 16) : (large ? 20 : 6);

  // Hidden attributes spread across foreign tables.
  std::vector<double> teacher_ratio(num_schools);   // students per teacher
  std::vector<double> attendance(num_schools);      // fraction
  std::vector<double> funding(num_districts);       // $k per student
  std::vector<double> tutoring(num_schools);        // co-predictor A
  std::vector<double> parent_index(num_schools);    // co-predictor B
  for (size_t s = 0; s < num_schools; ++s) {
    teacher_ratio[s] = std::max(8.0, rng.Normal(18.0, 4.0));
    attendance[s] = std::clamp(rng.Normal(0.92, 0.05), 0.6, 1.0);
    tutoring[s] = rng.Bernoulli(0.5) ? 1.0 : 0.0;
    parent_index[s] = rng.Normal(0.0, 1.0);
  }
  for (size_t d = 0; d < num_districts; ++d) {
    funding[d] = std::max(4.0, rng.Normal(11.0, 3.0));
  }

  // Base table.
  std::vector<int64_t> school_id(num_schools);
  std::vector<std::string> district(num_schools);
  std::vector<double> enrollment(num_schools);
  std::vector<std::string> level(num_schools);
  std::vector<int64_t> passed(num_schools);
  std::vector<size_t> district_of(num_schools);
  for (size_t s = 0; s < num_schools; ++s) {
    school_id[s] = 1000 + static_cast<int64_t>(s);
    district_of[s] = rng.UniformUint64(num_districts);
    district[s] = StrFormat("district_%zu", district_of[s]);
    enrollment[s] = std::max(80.0, rng.Normal(500.0, 180.0));
    level[s] = rng.Bernoulli(0.5) ? "elementary"
                                  : (rng.Bernoulli(0.5) ? "middle" : "high");
    // Latent pass score: base features carry a little signal; foreign
    // tables carry most of it. School (L) additionally hides an
    // interaction between two *different* tables (tutoring x parent
    // engagement) — the co-predictor the paper's budget-join discovers
    // and table-at-a-time joins miss.
    // The tutoring x parent-engagement interaction is a *co-predictor*
    // split across two different tables: neither column helps alone, so
    // table-at-a-time join plans miss it while budget joins (which see
    // both tables in one batch) can discover it — the paper's Table 5
    // observation.
    double latent = -0.12 * (teacher_ratio[s] - 18.0) +
                    9.0 * (attendance[s] - 0.9) +
                    0.35 * (funding[district_of[s]] - 11.0) +
                    0.0008 * (enrollment[s] - 500.0) +
                    1.6 * (tutoring[s] - 0.5) * parent_index[s];
    latent += rng.Normal(0.0, 0.55);
    passed[s] = latent > 0.0 ? 1 : 0;
  }
  Status st;
  st = scenario.base.AddColumn(df::Column::Int64("school_id", school_id));
  ARDA_CHECK(st.ok());
  st = scenario.base.AddColumn(df::Column::String("district", district));
  ARDA_CHECK(st.ok());
  st = scenario.base.AddColumn(df::Column::Double("enrollment", enrollment));
  ARDA_CHECK(st.ok());
  st = scenario.base.AddColumn(df::Column::String("level", level));
  ARDA_CHECK(st.ok());
  st = scenario.base.AddColumn(df::Column::Int64("passed", passed));
  ARDA_CHECK(st.ok());

  // Signal tables.
  auto add_school_table = [&](const std::string& name,
                              const std::string& column,
                              const std::vector<double>& values,
                              double score) {
    df::DataFrame table;
    Status status = table.AddColumn(df::Column::Int64("school_id",
                                                      school_id));
    ARDA_CHECK(status.ok());
    std::vector<double> noisy(values);
    for (double& v : noisy) v += rng.Normal(0.0, 0.01);
    status = table.AddColumn(df::Column::Double(column, noisy));
    ARDA_CHECK(status.ok());
    AddTableWithCandidate(&scenario, name, std::move(table),
                          {discovery::JoinKeyPair{"school_id", "school_id",
                                                  discovery::KeyKind::kHard}},
                          score, /*is_signal=*/true);
  };
  add_school_table("staffing", "students_per_teacher", teacher_ratio, 0.96);
  add_school_table("attendance", "attendance_rate", attendance, 0.93);
  add_school_table("tutoring", "tutoring_program", tutoring, 0.88);
  add_school_table("parents", "parent_engagement", parent_index, 0.86);
  {
    df::DataFrame funding_table;
    std::vector<std::string> d_names(num_districts);
    std::vector<double> d_funding(num_districts);
    for (size_t d = 0; d < num_districts; ++d) {
      d_names[d] = StrFormat("district_%zu", d);
      d_funding[d] = funding[d];
    }
    st = funding_table.AddColumn(df::Column::String("district", d_names));
    ARDA_CHECK(st.ok());
    st = funding_table.AddColumn(
        df::Column::Double("funding_per_student", d_funding));
    ARDA_CHECK(st.ok());
    AddTableWithCandidate(&scenario, "funding", std::move(funding_table),
                          {discovery::JoinKeyPair{"district", "district",
                                                  discovery::KeyKind::kHard}},
                          0.9, /*is_signal=*/true);
  }
  const size_t signal_count = 5;

  const size_t noise_count =
      total_tables > signal_count ? total_tables - signal_count : 0;
  AddNoiseTables(&scenario, "school_id", noise_count - noise_count / 5,
                 &rng);
  AddNoiseTables(&scenario, "district", noise_count / 5, &rng);

  Status add_base = scenario.repo.Add(scenario.name, scenario.base);
  ARDA_CHECK(add_base.ok());
  return scenario;
}

}  // namespace arda::data
