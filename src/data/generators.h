#ifndef ARDA_DATA_GENERATORS_H_
#define ARDA_DATA_GENERATORS_H_

#include <cstdint>

#include "data/scenario.h"

namespace arda::data {

/// Size knob for the scenario generators: kFull mirrors the paper's
/// relative table counts at laptop scale; kSmall shrinks rows and table
/// counts further for unit tests.
enum class ScenarioScale { kSmall, kFull };

/// Taxi (regression): predict daily taxi trips per (day, borough). Signal
/// lives in an hourly WEATHER table reachable through a *soft* time key
/// (exercising time resampling) and a daily EVENTS table; 20+ noise
/// tables mimic the crawled NYC open-data pool.
Scenario MakeTaxiScenario(uint64_t seed,
                          ScenarioScale scale = ScenarioScale::kFull);

/// Pickup (regression): hourly LGA passenger pickups. Signal tables are
/// time series sampled on misaligned clocks, so two-way nearest-neighbour
/// interpolation outperforms plain nearest/hard joins (the Fig. 5 story).
Scenario MakePickupScenario(uint64_t seed,
                            ScenarioScale scale = ScenarioScale::kFull);

/// Poverty (regression): county-level socio-economic indicators with pure
/// hard FIPS-key joins; signal is spread over several tables
/// (unemployment, education, income) among many irrelevant ones.
Scenario MakePovertyScenario(uint64_t seed,
                             ScenarioScale scale = ScenarioScale::kFull);

/// School (classification): predict standardized-test performance of
/// schools. `large` mirrors School (L): many more joinable tables with
/// co-predicting features split across tables (the budget-join story);
/// otherwise School (S) with a handful of tables.
Scenario MakeSchoolScenario(bool large, uint64_t seed,
                            ScenarioScale scale = ScenarioScale::kFull);

/// Kraken micro-benchmark (binary classification, 568/432 labels):
/// anonymized supercomputer sensors predicting machine failure, plus
/// `noise_multiplier` x original-count injected noise features drawn from
/// mixed distributions with random parameters.
MicroBenchmark MakeKrakenBenchmark(uint64_t seed,
                                   double noise_multiplier = 10.0);

/// Digits micro-benchmark (10-class classification, ~180 rows per class,
/// 64 grid features) with injected noise, mirroring the sklearn digits
/// setup of Section 7.2.
MicroBenchmark MakeDigitsBenchmark(uint64_t seed,
                                   double noise_multiplier = 10.0);

/// Appends `multiplier` x d noise features (uniform / Gaussian /
/// Bernoulli with randomized parameters) to a dataset — the paper's
/// micro-benchmark construction. Returns the number of appended features.
size_t InjectNoiseFeatures(ml::Dataset* data, double multiplier, Rng* rng);

/// All five real-world-style scenarios in the paper's order:
/// pickup, poverty, school (L), school (S), taxi.
std::vector<Scenario> MakeAllScenarios(uint64_t seed,
                                       ScenarioScale scale =
                                           ScenarioScale::kFull);

}  // namespace arda::data

#endif  // ARDA_DATA_GENERATORS_H_
