#ifndef ARDA_JOIN_GEO_JOIN_H_
#define ARDA_JOIN_GEO_JOIN_H_

#include <string>
#include <vector>

#include "dataframe/data_frame.h"
#include "discovery/candidate.h"
#include "util/rng.h"
#include "util/status.h"

namespace arda::join {

/// Options for multi-dimensional (location-style) soft joins — the
/// paper's explicitly-unexplored future work ("location-based joins
/// remain unexplored", Section 9).
struct GeoJoinOptions {
  /// Matches farther than this (in normalized per-dimension units, see
  /// `normalize`) produce nulls; 0 = unlimited.
  double tolerance = 0.0;
  /// Scale every soft dimension by the base column's value range before
  /// measuring distance, so a degree of longitude and a metre of altitude
  /// are commensurable.
  bool normalize = true;
  /// Prefix applied to foreign value columns on collision; defaults to
  /// "<table>.".
  std::string column_prefix;
};

/// LEFT JOIN where the key is a *composite of two or more numeric soft
/// columns* (e.g. latitude + longitude): each base row joins the foreign
/// row minimizing Euclidean distance over the (optionally normalized)
/// soft dimensions. Any hard keys in the candidate partition the search
/// space first, exactly like the 1-D soft join. One-to-many duplicates on
/// identical coordinates are pre-aggregated.
///
/// Requires at least two soft key pairs, all numeric. Base rows keep
/// their multiplicity; unmatched rows (empty partition or beyond
/// tolerance) carry nulls.
Result<df::DataFrame> ExecuteGeoLeftJoin(const df::DataFrame& base,
                                         const df::DataFrame& foreign,
                                         const discovery::CandidateJoin& cand,
                                         const GeoJoinOptions& options,
                                         Rng* rng);

}  // namespace arda::join

#endif  // ARDA_JOIN_GEO_JOIN_H_
