#include "join/geo_join.h"

#include <algorithm>
#include <cmath>

#include "dataframe/aggregate.h"
#include "dataframe/key_encoder.h"
#include "simd/simd.h"

namespace arda::join {

namespace {

constexpr size_t kNoMatch = static_cast<size_t>(-1);

}  // namespace

Result<df::DataFrame> ExecuteGeoLeftJoin(const df::DataFrame& base,
                                         const df::DataFrame& foreign,
                                         const discovery::CandidateJoin& cand,
                                         const GeoJoinOptions& options,
                                         Rng* rng) {
  (void)rng;
  // Classify and validate the composite key.
  std::vector<discovery::JoinKeyPair> soft_keys;
  std::vector<std::string> hard_base_cols;
  std::vector<std::string> hard_foreign_cols;
  std::vector<std::string> foreign_key_cols;
  for (const discovery::JoinKeyPair& key : cand.keys) {
    if (!base.HasColumn(key.base_column)) {
      return Status::NotFound("base key column missing: " + key.base_column);
    }
    if (!foreign.HasColumn(key.foreign_column)) {
      return Status::NotFound("foreign key column missing: " +
                              key.foreign_column);
    }
    foreign_key_cols.push_back(key.foreign_column);
    if (key.kind == discovery::KeyKind::kSoft) {
      if (!base.col(key.base_column).IsNumeric() ||
          !foreign.col(key.foreign_column).IsNumeric()) {
        return Status::InvalidArgument("geo soft keys must be numeric: " +
                                       key.base_column);
      }
      soft_keys.push_back(key);
    } else {
      hard_base_cols.push_back(key.base_column);
      hard_foreign_cols.push_back(key.foreign_column);
    }
  }
  if (soft_keys.size() < 2) {
    return Status::InvalidArgument(
        "geo join needs >= 2 soft key dimensions (use ExecuteLeftJoin "
        "for 1-D soft keys)");
  }

  // Pre-aggregate duplicates on the full key so each coordinate tuple
  // appears once.
  df::DataFrame working = foreign;
  if (df::KeyEncoder(working, foreign_key_cols).HasDuplicates()) {
    ARDA_ASSIGN_OR_RETURN(
        working, df::GroupByAggregate(working, foreign_key_cols, {}));
  }

  // Per-dimension normalization scales from the *base* column ranges.
  const size_t dims = soft_keys.size();
  std::vector<double> scale(dims, 1.0);
  if (options.normalize) {
    for (size_t d = 0; d < dims; ++d) {
      std::vector<double> values =
          base.col(soft_keys[d].base_column).NonNullNumericValues();
      if (values.empty()) continue;
      auto [lo, hi] = std::minmax_element(values.begin(), values.end());
      double span = *hi - *lo;
      scale[d] = span > 1e-12 ? 1.0 / span : 1.0;
    }
  }

  // Partition foreign rows by the interned hard key part; store
  // coordinates. With no hard keys every row lands in one partition.
  df::KeyEncoder::Options key_opts;
  std::vector<size_t> hard_base_idx;
  for (size_t k = 0; k < hard_base_cols.size(); ++k) {
    hard_base_idx.push_back(base.ColumnIndex(hard_base_cols[k]));
    key_opts.probe_types.push_back(base.col(hard_base_cols[k]).type());
  }
  df::KeyEncoder index(working, hard_foreign_cols, key_opts);
  struct Point {
    std::vector<double> coords;
    size_t row;
  };
  std::vector<std::vector<Point>> partitions(index.num_groups());
  for (size_t r = 0; r < working.NumRows(); ++r) {
    Point point;
    point.row = r;
    point.coords.resize(dims);
    bool any_null = false;
    for (size_t d = 0; d < dims; ++d) {
      const df::Column& col = working.col(soft_keys[d].foreign_column);
      if (col.IsNull(r)) {
        any_null = true;
        break;
      }
      point.coords[d] = col.NumericAt(r) * scale[d];
    }
    if (any_null) continue;
    partitions[index.GroupOf(r)].push_back(std::move(point));
  }

  // Nearest-neighbour match per base row (linear scan per partition).
  // Hard-key group ids are resolved for the whole probe side in one
  // batch; rows with nulls are skipped below, exactly as before.
  const size_t n = base.NumRows();
  std::vector<uint64_t> gids(n);
  index.ProbeAll(base, hard_base_idx, gids.data());
  std::vector<size_t> match(n, kNoMatch);
  std::vector<double> query(dims);
  for (size_t r = 0; r < n; ++r) {
    bool any_null = false;
    for (const std::string& name : hard_base_cols) {
      if (base.col(name).IsNull(r)) {
        any_null = true;
        break;
      }
    }
    for (size_t d = 0; d < dims && !any_null; ++d) {
      const df::Column& col = base.col(soft_keys[d].base_column);
      if (col.IsNull(r)) {
        any_null = true;
      } else {
        query[d] = col.NumericAt(r) * scale[d];
      }
    }
    if (any_null) continue;
    const uint64_t gid = gids[r];
    if (gid == df::KeyEncoder::kMiss) continue;
    double best_dist_sq = 1e300;
    size_t best_row = kNoMatch;
    for (const Point& point : partitions[gid]) {
      const double dist_sq =
          simd::SquaredDistance(query.data(), point.coords.data(), dims);
      if (dist_sq < best_dist_sq) {
        best_dist_sq = dist_sq;
        best_row = point.row;
      }
    }
    if (best_row != kNoMatch &&
        (options.tolerance <= 0.0 ||
         std::sqrt(best_dist_sq) <= options.tolerance)) {
      match[r] = best_row;
    }
  }

  // Assemble output.
  df::DataFrame out = base;
  std::string prefix = options.column_prefix.empty()
                           ? cand.foreign_table + "."
                           : options.column_prefix;
  df::DataFrame joined_cols;
  for (size_t ci = 0; ci < working.NumCols(); ++ci) {
    const df::Column& src = working.col(ci);
    if (std::find(foreign_key_cols.begin(), foreign_key_cols.end(),
                  src.name()) != foreign_key_cols.end()) {
      continue;
    }
    df::Column dst = df::Column::Empty(src.name(), src.type());
    for (size_t r = 0; r < n; ++r) {
      if (match[r] == kNoMatch) {
        dst.AppendNull();
      } else {
        dst.AppendFrom(src, match[r]);
      }
    }
    ARDA_RETURN_IF_ERROR(joined_cols.AddColumn(std::move(dst)));
  }
  ARDA_RETURN_IF_ERROR(out.HStack(joined_cols, prefix));
  return out;
}

}  // namespace arda::join
