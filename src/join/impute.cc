#include "join/impute.h"

#include <cmath>

#include "util/fault.h"

namespace arda::join {

Status ImputeInPlace(df::DataFrame* frame, Rng* rng) {
  ARDA_FAULT_POINT(fault::kImpute);
  for (size_t ci = 0; ci < frame->NumCols(); ++ci) {
    df::Column& col = frame->col(ci);
    if (col.NullCount() == 0) continue;
    if (col.IsNumeric()) {
      const double median = col.NumericMedian();
      if (col.type() == df::DataType::kInt64 && !std::isfinite(median)) {
        return Status::FailedPrecondition(
            "non-finite median for int64 column: " + col.name());
      }
      for (size_t r = 0; r < col.size(); ++r) {
        if (!col.IsNull(r)) continue;
        if (col.type() == df::DataType::kDouble) {
          col.SetDouble(r, median);
        } else {
          col.SetInt64(r, static_cast<int64_t>(std::llround(median)));
        }
      }
      continue;
    }
    // Categorical: uniform random draw from the observed values.
    std::vector<size_t> non_null_rows;
    non_null_rows.reserve(col.size());
    for (size_t r = 0; r < col.size(); ++r) {
      if (!col.IsNull(r)) non_null_rows.push_back(r);
    }
    for (size_t r = 0; r < col.size(); ++r) {
      if (!col.IsNull(r)) continue;
      if (non_null_rows.empty()) {
        col.SetString(r, "<missing>");
      } else {
        size_t pick = non_null_rows[static_cast<size_t>(
            rng->UniformUint64(non_null_rows.size()))];
        col.SetString(r, col.StringAt(pick));
      }
    }
  }
  return Status::Ok();
}

size_t TotalNullCount(const df::DataFrame& frame) {
  size_t count = 0;
  for (size_t ci = 0; ci < frame.NumCols(); ++ci) {
    count += frame.col(ci).NullCount();
  }
  return count;
}

}  // namespace arda::join
