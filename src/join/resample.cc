#include "join/resample.h"

#include <algorithm>
#include <cmath>

#include "util/fault.h"
#include "util/trace.h"

namespace arda::join {

namespace {

// Rounds `value` (> 0, finite) to 9 significant decimal digits, the same
// precision the legacy "%.9g" + ParseDouble round-trip produced, without
// going through strings.
double SnapToNineDigits(double value) {
  const int exp10 = static_cast<int>(std::floor(std::log10(value)));
  const double scale = std::pow(10.0, 8 - exp10);
  const double snapped = std::round(value * scale) / scale;
  // Guard the scale itself overflowing/underflowing at extreme exponents;
  // such gaps are already far outside any real time granularity.
  return std::isfinite(snapped) && snapped > 0.0 ? snapped : value;
}

}  // namespace

double DetectGranularity(const df::Column& column) {
  if (!column.IsNumeric()) return 0.0;
  std::vector<double> values = column.NonNullNumericValues();
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  if (values.size() < 2) return 0.0;
  std::vector<double> gaps;
  gaps.reserve(values.size() - 1);
  for (size_t i = 1; i < values.size(); ++i) {
    double gap = values[i] - values[i - 1];
    // A non-finite gap (keys at ±inf, or a NaN key sorting to one end)
    // carries no granularity signal; using it would poison the median.
    if (gap > 0.0 && std::isfinite(gap)) gaps.push_back(gap);
  }
  if (gaps.empty()) return 0.0;
  size_t mid = gaps.size() / 2;
  std::nth_element(gaps.begin(), gaps.begin() + mid, gaps.end());
  // Snap to 9 significant digits: gaps computed from accumulated floats
  // come out as 0.19999999999999996 or 1.0000000000000002, and using them
  // raw would shift bucket boundaries across exact key values.
  return SnapToNineDigits(gaps[mid]);
}

Result<df::DataFrame> TimeResample(const df::DataFrame& foreign,
                                   const std::string& key_column,
                                   double target_granularity,
                                   const df::AggregateOptions& options) {
  trace::StageScope scope("resample", key_column);
  ARDA_FAULT_POINT(fault::kResample);
  if (!foreign.HasColumn(key_column)) {
    return Status::NotFound("no such key column: " + key_column);
  }
  const df::Column& key = foreign.col(key_column);
  if (!key.IsNumeric()) {
    return Status::InvalidArgument("time resampling needs a numeric key: " +
                                   key_column);
  }
  if (target_granularity <= 0.0) {
    return Status::InvalidArgument("granularity must be positive");
  }

  // Replace the key with its bucket representative, then aggregate.
  df::DataFrame bucketed = foreign.Drop({key_column});
  df::Column bucket_key = df::Column::Empty(key_column,
                                            df::DataType::kDouble);
  for (size_t r = 0; r < foreign.NumRows(); ++r) {
    if (key.IsNull(r)) {
      bucket_key.AppendNull();
    } else {
      double v = key.NumericAt(r);
      bucket_key.AppendDouble(std::floor(v / target_granularity) *
                              target_granularity);
    }
  }
  ARDA_RETURN_IF_ERROR(bucketed.AddColumn(std::move(bucket_key)));
  return df::GroupByAggregate(bucketed, {key_column}, options);
}

}  // namespace arda::join
