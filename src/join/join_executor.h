#ifndef ARDA_JOIN_JOIN_EXECUTOR_H_
#define ARDA_JOIN_JOIN_EXECUTOR_H_

#include <string>
#include <vector>

#include "dataframe/aggregate.h"
#include "dataframe/data_frame.h"
#include "discovery/candidate.h"
#include "util/rng.h"
#include "util/status.h"

namespace arda::join {

/// How soft (inexact) keys are matched (Section 4 of the paper).
enum class SoftJoinMethod {
  /// Treat the soft key as hard: only exact value matches join.
  kHardExact,
  /// Join each base row with the single closest foreign key value.
  kNearest,
  /// Find the closest foreign keys below and above the base value and
  /// lambda-interpolate their rows (numeric columns linearly, categorical
  /// columns picked randomly in proportion to lambda).
  kTwoWayNearest,
};

/// Returns a short name for the method ("hard", "nearest", "2-way").
const char* SoftJoinMethodName(SoftJoinMethod method);

/// Options controlling join execution.
struct JoinOptions {
  SoftJoinMethod soft_method = SoftJoinMethod::kTwoWayNearest;
  /// When the base soft key is coarser than the foreign key, resample the
  /// foreign table to the base granularity before matching.
  bool time_resample = true;
  /// Nearest-neighbour matches farther than this produce nulls; 0 = no
  /// limit.
  double soft_tolerance = 0.0;
  /// Aggregation used for one-to-many pre-aggregation and resampling.
  df::AggregateOptions aggregate;
  /// Prefix applied to foreign columns on name collision; defaults to
  /// "<table>." when empty and the candidate names a table.
  std::string column_prefix;
  /// Radix partitions for the out-of-core hard-join path: build and probe
  /// rows split by key hash, each partition indexed and probed as an
  /// independent ThreadPool task, matches written to disjoint slots —
  /// bit-identical to the single-pass join at any count. 0 derives the
  /// count from `memory_budget_bytes`; a resolved count of <= 1 (or any
  /// soft-key join, which needs whole-table nearest-neighbour order) runs
  /// the existing single pass.
  size_t partition_count = 0;
  /// Soft per-join working-set budget, consulted only when
  /// `partition_count` == 0 (0 = unbounded). Forwarded, together with
  /// `partition_count`, to the one-to-many pre-aggregation pass.
  uint64_t memory_budget_bytes = 0;
};

/// Executes the augmentation join ARDA needs: a LEFT JOIN that keeps every
/// base row exactly once. One-to-many foreign matches are pre-aggregated
/// on the key (Section 4 "Join Cardinality"); soft keys are matched per
/// `options.soft_method`; composite keys may mix hard keys with at most
/// one soft key (hard keys partition, the soft key matches nearest within
/// the partition). Unmatched rows carry nulls (impute separately).
///
/// The result contains all base columns followed by the foreign non-key
/// columns, renamed "<prefix><name>" on collision.
Result<df::DataFrame> ExecuteLeftJoin(const df::DataFrame& base,
                                      const df::DataFrame& foreign,
                                      const discovery::CandidateJoin& cand,
                                      const JoinOptions& options, Rng* rng);

}  // namespace arda::join

#endif  // ARDA_JOIN_JOIN_EXECUTOR_H_
