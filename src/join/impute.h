#ifndef ARDA_JOIN_IMPUTE_H_
#define ARDA_JOIN_IMPUTE_H_

#include "dataframe/data_frame.h"
#include "util/rng.h"

namespace arda::join {

/// ARDA's imputation policy (Section 4): LEFT JOINs leave nulls for
/// unmatched rows, which are filled with the column median for numeric
/// columns and with a uniformly random non-null value for categorical
/// columns. Columns that are entirely null become constant 0 / "<missing>".
void ImputeInPlace(df::DataFrame* frame, Rng* rng);

/// Number of null cells across all columns (used to verify imputation).
size_t TotalNullCount(const df::DataFrame& frame);

}  // namespace arda::join

#endif  // ARDA_JOIN_IMPUTE_H_
