#ifndef ARDA_JOIN_IMPUTE_H_
#define ARDA_JOIN_IMPUTE_H_

#include "dataframe/data_frame.h"
#include "util/rng.h"
#include "util/status.h"

namespace arda::join {

/// ARDA's imputation policy (Section 4): LEFT JOINs leave nulls for
/// unmatched rows, which are filled with the column median for numeric
/// columns and with a uniformly random non-null value for categorical
/// columns. Columns that are entirely null become constant 0 / "<missing>".
/// Fails (leaving already-processed columns imputed) on a non-finite
/// int64 median or an injected fault; callers degrade by keeping the
/// unimputed frame — feature encoding fills numeric nulls on its own.
Status ImputeInPlace(df::DataFrame* frame, Rng* rng);

/// Number of null cells across all columns (used to verify imputation).
size_t TotalNullCount(const df::DataFrame& frame);

}  // namespace arda::join

#endif  // ARDA_JOIN_IMPUTE_H_
