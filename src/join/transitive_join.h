#ifndef ARDA_JOIN_TRANSITIVE_JOIN_H_
#define ARDA_JOIN_TRANSITIVE_JOIN_H_

#include "discovery/transitive.h"
#include "join/join_executor.h"

namespace arda::join {

/// Materializes a two-hop path into an ordinary single-hop candidate:
/// LEFT-joins `final_table` onto `via_table` (per the path's second-hop
/// keys), registers the bridged table in `repo` under
/// path.MaterializedName() (replacing any previous bridge), and returns
/// the candidate describing the base -> bridge join on the first-hop
/// keys. After this, ARDA processes the bridge like any other candidate —
/// which is exactly how transitive augmentation composes with the
/// existing pipeline.
Result<discovery::CandidateJoin> MaterializeTransitive(
    discovery::DataRepository* repo,
    const discovery::TransitiveCandidate& path,
    const JoinOptions& options, Rng* rng);

}  // namespace arda::join

#endif  // ARDA_JOIN_TRANSITIVE_JOIN_H_
