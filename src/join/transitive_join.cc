#include "join/transitive_join.h"

namespace arda::join {

Result<discovery::CandidateJoin> MaterializeTransitive(
    discovery::DataRepository* repo,
    const discovery::TransitiveCandidate& path,
    const JoinOptions& options, Rng* rng) {
  ARDA_ASSIGN_OR_RETURN(const df::DataFrame* via,
                        repo->Get(path.via_table));
  ARDA_ASSIGN_OR_RETURN(const df::DataFrame* final_table,
                        repo->Get(path.final_table));

  discovery::CandidateJoin second_hop;
  second_hop.foreign_table = path.final_table;
  second_hop.keys = path.via_to_final;
  ARDA_ASSIGN_OR_RETURN(
      df::DataFrame bridged,
      ExecuteLeftJoin(*via, *final_table, second_hop, options, rng));

  repo->AddOrReplace(path.MaterializedName(), std::move(bridged));

  discovery::CandidateJoin first_hop;
  first_hop.foreign_table = path.MaterializedName();
  first_hop.keys = path.base_to_via;
  first_hop.score = path.score;
  return first_hop;
}

}  // namespace arda::join
