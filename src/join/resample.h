#ifndef ARDA_JOIN_RESAMPLE_H_
#define ARDA_JOIN_RESAMPLE_H_

#include <string>

#include "dataframe/aggregate.h"
#include "dataframe/data_frame.h"
#include "util/status.h"

namespace arda::join {

/// Estimates the granularity of a numeric (time) column as the median
/// positive gap between consecutive sorted distinct values, snapped to 9
/// significant digits. Returns 0 for columns with fewer than two distinct
/// values or whose gaps are all non-finite (±inf / NaN keys).
double DetectGranularity(const df::Column& column);

/// Time resampling (Section 4 "Time-Resampling"): when the base table's
/// time key is coarser than the foreign table's, every foreign row is
/// bucketed to the base granularity (floor to a multiple of
/// `target_granularity`) and the foreign table is aggregated per bucket
/// before the join, so a day-level key absorbs all of that day's
/// minute-level rows instead of matching one arbitrary row.
///
/// Returns the resampled foreign table whose `key_column` (a kDouble
/// column in the output) holds bucket representatives. Fails if the key is
/// missing or non-numeric, or the granularity is not positive.
Result<df::DataFrame> TimeResample(const df::DataFrame& foreign,
                                   const std::string& key_column,
                                   double target_granularity,
                                   const df::AggregateOptions& options = {});

}  // namespace arda::join

#endif  // ARDA_JOIN_RESAMPLE_H_
