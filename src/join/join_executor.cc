#include "join/join_executor.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "join/resample.h"
#include "util/string_util.h"

namespace arda::join {

namespace {

constexpr size_t kNoMatch = static_cast<size_t>(-1);
constexpr char kSep = '\x1f';
constexpr const char* kNull = "\x1e<null>";

// Per-base-row match result. For two-way joins `high`/`lambda` describe
// the interpolation partner: value = lambda * row(low) + (1-lambda) *
// row(high).
struct Match {
  size_t low = kNoMatch;
  size_t high = kNoMatch;
  double lambda = 1.0;
};

std::string ComposeKey(const df::DataFrame& frame,
                       const std::vector<std::string>& columns, size_t row) {
  std::string key;
  for (const std::string& name : columns) {
    const df::Column& col = frame.col(name);
    key += col.IsNull(row) ? kNull : col.ValueToString(row);
    key += kSep;
  }
  return key;
}

bool HasDuplicateKeys(const df::DataFrame& frame,
                      const std::vector<std::string>& columns) {
  std::set<std::string> seen;
  for (size_t r = 0; r < frame.NumRows(); ++r) {
    if (!seen.insert(ComposeKey(frame, columns, r)).second) return true;
  }
  return false;
}

// Nearest / two-way nearest matching within one sorted partition of
// (key value, foreign row) pairs.
Match MatchSoft(const std::vector<std::pair<double, size_t>>& sorted,
                double value, SoftJoinMethod method, double tolerance) {
  Match match;
  if (sorted.empty()) return match;
  auto it = std::lower_bound(
      sorted.begin(), sorted.end(), value,
      [](const std::pair<double, size_t>& a, double v) { return a.first < v; });
  // Candidates: the first element >= value and its predecessor.
  size_t hi_idx = static_cast<size_t>(it - sorted.begin());
  size_t lo_idx = hi_idx == 0 ? kNoMatch : hi_idx - 1;
  if (hi_idx == sorted.size()) hi_idx = kNoMatch;

  auto distance = [&](size_t idx) {
    return std::fabs(sorted[idx].first - value);
  };

  if (method == SoftJoinMethod::kNearest) {
    size_t best = kNoMatch;
    if (lo_idx != kNoMatch && hi_idx != kNoMatch) {
      best = distance(lo_idx) <= distance(hi_idx) ? lo_idx : hi_idx;
    } else if (lo_idx != kNoMatch) {
      best = lo_idx;
    } else {
      best = hi_idx;
    }
    if (best != kNoMatch &&
        (tolerance <= 0.0 || distance(best) <= tolerance)) {
      match.low = sorted[best].second;
    }
    return match;
  }

  // Two-way nearest: surround `value` when possible.
  if (lo_idx != kNoMatch && hi_idx != kNoMatch) {
    double y_low = sorted[lo_idx].first;
    double y_high = sorted[hi_idx].first;
    if (tolerance > 0.0 && distance(lo_idx) > tolerance &&
        distance(hi_idx) > tolerance) {
      return match;
    }
    if (y_high <= y_low) {
      match.low = sorted[lo_idx].second;
      return match;
    }
    // value = lambda * y_low + (1 - lambda) * y_high.
    double lambda = (y_high - value) / (y_high - y_low);
    match.low = sorted[lo_idx].second;
    match.high = sorted[hi_idx].second;
    match.lambda = std::clamp(lambda, 0.0, 1.0);
    return match;
  }
  size_t only = lo_idx != kNoMatch ? lo_idx : hi_idx;
  if (only != kNoMatch && (tolerance <= 0.0 || distance(only) <= tolerance)) {
    match.low = sorted[only].second;
  }
  return match;
}

}  // namespace

const char* SoftJoinMethodName(SoftJoinMethod method) {
  switch (method) {
    case SoftJoinMethod::kHardExact:
      return "hard";
    case SoftJoinMethod::kNearest:
      return "nearest";
    case SoftJoinMethod::kTwoWayNearest:
      return "2-way";
  }
  return "unknown";
}

Result<df::DataFrame> ExecuteLeftJoin(const df::DataFrame& base,
                                      const df::DataFrame& foreign,
                                      const discovery::CandidateJoin& cand,
                                      const JoinOptions& options, Rng* rng) {
  if (cand.keys.empty()) {
    return Status::InvalidArgument("candidate join has no keys");
  }
  // Validate keys and classify.
  std::vector<discovery::JoinKeyPair> hard_keys;
  const discovery::JoinKeyPair* soft_key = nullptr;
  for (const discovery::JoinKeyPair& key : cand.keys) {
    if (!base.HasColumn(key.base_column)) {
      return Status::NotFound("base key column missing: " + key.base_column);
    }
    if (!foreign.HasColumn(key.foreign_column)) {
      return Status::NotFound("foreign key column missing: " +
                              key.foreign_column);
    }
    bool treat_soft = key.kind == discovery::KeyKind::kSoft &&
                      options.soft_method != SoftJoinMethod::kHardExact;
    if (treat_soft) {
      if (!base.col(key.base_column).IsNumeric() ||
          !foreign.col(key.foreign_column).IsNumeric()) {
        return Status::InvalidArgument("soft keys must be numeric: " +
                                       key.base_column);
      }
      if (soft_key != nullptr) {
        return Status::InvalidArgument(
            "composite keys support at most one soft key");
      }
      soft_key = &key;
    } else {
      hard_keys.push_back(key);
    }
  }

  // Optional time resampling: align a finer-grained foreign key to the
  // base key's granularity. Applies to any numeric soft-kind key, for all
  // soft methods including hard-exact (the paper's "time-resampled hard
  // join").
  df::DataFrame working = foreign;
  const discovery::JoinKeyPair* numeric_key = nullptr;
  for (const discovery::JoinKeyPair& key : cand.keys) {
    if (key.kind == discovery::KeyKind::kSoft &&
        base.col(key.base_column).IsNumeric() &&
        foreign.col(key.foreign_column).IsNumeric()) {
      numeric_key = &key;
      break;
    }
  }
  double bucket_granularity = 0.0;
  if (options.time_resample && numeric_key != nullptr) {
    double g_base = DetectGranularity(base.col(numeric_key->base_column));
    double g_foreign =
        DetectGranularity(foreign.col(numeric_key->foreign_column));
    if (g_base > 0.0 && g_foreign > 0.0 && g_base > 1.5 * g_foreign) {
      ARDA_ASSIGN_OR_RETURN(
          working, TimeResample(working, numeric_key->foreign_column, g_base,
                                options.aggregate));
      if (soft_key == nullptr) {
        // Hard-exact matching on a resampled key: bucket the base values
        // the same way so representatives align.
        bucket_granularity = g_base;
      }
    }
  }

  // Column-name lists on the (possibly resampled) foreign table.
  std::vector<std::string> foreign_key_cols;
  for (const discovery::JoinKeyPair& key : cand.keys) {
    foreign_key_cols.push_back(key.foreign_column);
  }
  std::vector<std::string> hard_foreign_cols;
  std::vector<std::string> hard_base_cols;
  for (const discovery::JoinKeyPair& key : hard_keys) {
    hard_foreign_cols.push_back(key.foreign_column);
    hard_base_cols.push_back(key.base_column);
  }

  // One-to-many handling: pre-aggregate so each key combination appears
  // exactly once. Soft joins always aggregate (interpolation needs a
  // unique row per key value).
  if (soft_key != nullptr || HasDuplicateKeys(working, foreign_key_cols)) {
    ARDA_ASSIGN_OR_RETURN(working,
                          df::GroupByAggregate(working, foreign_key_cols,
                                               options.aggregate));
  }

  const size_t n = base.NumRows();
  std::vector<Match> matches(n);

  auto hard_base_key = [&](size_t row) {
    if (bucket_granularity <= 0.0) {
      return ComposeKey(base, hard_base_cols, row);
    }
    // Bucket numeric soft-kind values to the resample granularity.
    std::string key;
    for (const discovery::JoinKeyPair& hk : hard_keys) {
      const df::Column& col = base.col(hk.base_column);
      if (col.IsNull(row)) {
        key += kNull;
      } else if (hk.kind == discovery::KeyKind::kSoft && col.IsNumeric()) {
        double v = std::floor(col.NumericAt(row) / bucket_granularity) *
                   bucket_granularity;
        key += StrFormat("%.10g", v);
      } else {
        key += col.ValueToString(row);
      }
      key += kSep;
    }
    return key;
  };

  if (soft_key == nullptr) {
    // Pure hash join on the composite hard key.
    std::unordered_map<std::string, size_t> index;
    index.reserve(working.NumRows() * 2);
    for (size_t r = 0; r < working.NumRows(); ++r) {
      index.emplace(ComposeKey(working, hard_foreign_cols, r), r);
    }
    for (size_t r = 0; r < n; ++r) {
      bool any_null = false;
      for (const std::string& name : hard_base_cols) {
        if (base.col(name).IsNull(r)) {
          any_null = true;
          break;
        }
      }
      if (any_null) continue;
      auto it = index.find(hard_base_key(r));
      if (it != index.end()) matches[r].low = it->second;
    }
  } else {
    // Partition the foreign table by the hard part of the key, sort each
    // partition by the soft key, then match per base row.
    std::unordered_map<std::string, std::vector<std::pair<double, size_t>>>
        partitions;
    const df::Column& fsoft = working.col(soft_key->foreign_column);
    for (size_t r = 0; r < working.NumRows(); ++r) {
      if (fsoft.IsNull(r)) continue;
      partitions[ComposeKey(working, hard_foreign_cols, r)].emplace_back(
          fsoft.NumericAt(r), r);
    }
    for (auto& [key, rows] : partitions) {
      std::sort(rows.begin(), rows.end());
    }
    const df::Column& bsoft = base.col(soft_key->base_column);
    for (size_t r = 0; r < n; ++r) {
      if (bsoft.IsNull(r)) continue;
      bool any_null = false;
      for (const std::string& name : hard_base_cols) {
        if (base.col(name).IsNull(r)) {
          any_null = true;
          break;
        }
      }
      if (any_null) continue;
      auto it = partitions.find(ComposeKey(base, hard_base_cols, r));
      if (it == partitions.end()) continue;
      matches[r] = MatchSoft(it->second, bsoft.NumericAt(r),
                             options.soft_method, options.soft_tolerance);
    }
  }

  // Assemble the output: all base columns, then foreign value columns.
  df::DataFrame out = base;
  std::string prefix = options.column_prefix.empty()
                           ? cand.foreign_table + "."
                           : options.column_prefix;
  df::DataFrame joined_cols;
  for (size_t ci = 0; ci < working.NumCols(); ++ci) {
    const df::Column& src = working.col(ci);
    if (std::find(foreign_key_cols.begin(), foreign_key_cols.end(),
                  src.name()) != foreign_key_cols.end()) {
      continue;  // key columns are already represented in the base table
    }
    const bool interpolate =
        soft_key != nullptr &&
        options.soft_method == SoftJoinMethod::kTwoWayNearest &&
        src.IsNumeric();
    df::Column dst =
        interpolate ? df::Column::Empty(src.name(), df::DataType::kDouble)
                    : df::Column::Empty(src.name(), src.type());
    for (size_t r = 0; r < n; ++r) {
      const Match& m = matches[r];
      if (m.low == kNoMatch) {
        dst.AppendNull();
        continue;
      }
      if (m.high == kNoMatch) {
        if (interpolate) {
          if (src.IsNull(m.low)) {
            dst.AppendNull();
          } else {
            dst.AppendDouble(src.NumericAt(m.low));
          }
        } else {
          dst.AppendFrom(src, m.low);
        }
        continue;
      }
      // Two-way interpolation between rows m.low and m.high.
      if (src.IsNumeric()) {
        if (src.IsNull(m.low) || src.IsNull(m.high)) {
          dst.AppendNull();
        } else {
          dst.AppendDouble(m.lambda * src.NumericAt(m.low) +
                           (1.0 - m.lambda) * src.NumericAt(m.high));
        }
      } else {
        size_t pick = rng->Bernoulli(m.lambda) ? m.low : m.high;
        dst.AppendFrom(src, pick);
      }
    }
    ARDA_RETURN_IF_ERROR(joined_cols.AddColumn(std::move(dst)));
  }
  ARDA_RETURN_IF_ERROR(out.HStack(joined_cols, prefix));
  return out;
}

}  // namespace arda::join
