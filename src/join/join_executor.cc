#include "join/join_executor.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>

#include "dataframe/key_encoder.h"
#include "dataframe/partition.h"
#include "join/resample.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace arda::join {

namespace {

constexpr size_t kNoMatch = static_cast<size_t>(-1);

// Per-base-row match result. For two-way joins `high`/`lambda` describe
// the interpolation partner: value = lambda * row(low) + (1-lambda) *
// row(high).
struct Match {
  size_t low = kNoMatch;
  size_t high = kNoMatch;
  double lambda = 1.0;
};


// Nearest / two-way nearest matching within one sorted partition of
// (key value, foreign row) pairs.
Match MatchSoft(const std::vector<std::pair<double, size_t>>& sorted,
                double value, SoftJoinMethod method, double tolerance) {
  Match match;
  if (sorted.empty()) return match;
  auto it = std::lower_bound(
      sorted.begin(), sorted.end(), value,
      [](const std::pair<double, size_t>& a, double v) { return a.first < v; });
  // Candidates: the first element >= value and its predecessor.
  size_t hi_idx = static_cast<size_t>(it - sorted.begin());
  size_t lo_idx = hi_idx == 0 ? kNoMatch : hi_idx - 1;
  if (hi_idx == sorted.size()) hi_idx = kNoMatch;

  auto distance = [&](size_t idx) {
    return std::fabs(sorted[idx].first - value);
  };

  if (method == SoftJoinMethod::kNearest) {
    size_t best = kNoMatch;
    if (lo_idx != kNoMatch && hi_idx != kNoMatch) {
      best = distance(lo_idx) <= distance(hi_idx) ? lo_idx : hi_idx;
    } else if (lo_idx != kNoMatch) {
      best = lo_idx;
    } else {
      best = hi_idx;
    }
    if (best != kNoMatch &&
        (tolerance <= 0.0 || distance(best) <= tolerance)) {
      match.low = sorted[best].second;
    }
    return match;
  }

  // Two-way nearest: surround `value` when possible.
  if (lo_idx != kNoMatch && hi_idx != kNoMatch) {
    double y_low = sorted[lo_idx].first;
    double y_high = sorted[hi_idx].first;
    if (tolerance > 0.0 && distance(lo_idx) > tolerance &&
        distance(hi_idx) > tolerance) {
      return match;
    }
    if (y_high <= y_low) {
      match.low = sorted[lo_idx].second;
      return match;
    }
    // value = lambda * y_low + (1 - lambda) * y_high.
    double lambda = (y_high - value) / (y_high - y_low);
    match.low = sorted[lo_idx].second;
    match.high = sorted[hi_idx].second;
    match.lambda = std::clamp(lambda, 0.0, 1.0);
    return match;
  }
  size_t only = lo_idx != kNoMatch ? lo_idx : hi_idx;
  if (only != kNoMatch && (tolerance <= 0.0 || distance(only) <= tolerance)) {
    match.low = sorted[only].second;
  }
  return match;
}

// A frame holding just the key columns of `frame` at `col_idx` for the
// rows in `rows`, renamed "k0".."kN-1" so repeated source columns (the
// same foreign column used by two key pairs) cannot collide.
df::DataFrame TakeKeyColumns(const df::DataFrame& frame,
                             const std::vector<size_t>& col_idx,
                             const std::vector<size_t>& rows) {
  df::DataFrame out;
  for (size_t k = 0; k < col_idx.size(); ++k) {
    df::Column col = frame.col(col_idx[k]).Take(rows);
    col.set_name(StrFormat("k%zu", k));
    Status added = out.AddColumn(std::move(col));
    ARDA_CHECK(added.ok());
  }
  return out;
}

// Out-of-core hash join on a pure hard key: both sides are
// radix-partitioned by key hash (equal keys never span partitions —
// partition.h), each partition is indexed and probed as an independent
// ThreadPool task over key-only sub-frames, and matches land in disjoint
// global slots. Bit-identical to the single-pass join at any partition
// count: partitions keep ascending row order, so each key group's first
// foreign row is the same row the whole-table index would have kept, and
// the one-to-many pre-aggregation (itself partitioned) produces the same
// frame the unpartitioned duplicate path does.
//
// `working` is the (possibly resampled) foreign table; replaced in place
// when duplicate keys force pre-aggregation.
Status PartitionedHardJoin(const df::DataFrame& base,
                           df::DataFrame* working,
                           const std::vector<std::string>& foreign_key_cols,
                           const std::vector<std::string>& hard_foreign_cols,
                           const std::vector<size_t>& hard_base_idx,
                           const df::KeyEncoder::Options& key_opts,
                           const JoinOptions& options,
                           size_t num_partitions,
                           std::vector<Match>* matches) {
  ARDA_FAULT_POINT(fault::kPartitionSpill);
  trace::StageScope scope("join_partition");
  const size_t num_keys = hard_foreign_cols.size();
  std::vector<size_t> local_idx(num_keys);
  for (size_t k = 0; k < num_keys; ++k) local_idx[k] = k;

  // Key specs for both sides, recomputed whenever `working` changes
  // (aggregation reorders columns, so foreign indices resolve by name).
  // The native-int64 flag is decided once per key *pair* and shared by
  // both sides — a per-side decision could split matching rows across
  // partitions (partition.h).
  std::vector<size_t> fidx;
  std::vector<df::PartitionKeySpec> fspecs;
  std::vector<df::PartitionKeySpec> bspecs;
  auto build_specs = [&]() {
    fidx.clear();
    fspecs.clear();
    bspecs.clear();
    for (size_t k = 0; k < num_keys; ++k) {
      const size_t fi = working->ColumnIndex(hard_foreign_cols[k]);
      ARDA_CHECK(fi != df::DataFrame::kNpos);
      fidx.push_back(fi);
      const double granularity = key_opts.probe_granularity[k];
      const bool native =
          working->col(fi).type() == df::DataType::kInt64 &&
          base.col(hard_base_idx[k]).type() == df::DataType::kInt64 &&
          granularity <= 0.0;
      df::PartitionKeySpec fspec;
      fspec.col = fi;
      fspec.native = native;
      fspecs.push_back(fspec);
      df::PartitionKeySpec bspec;
      bspec.col = hard_base_idx[k];
      bspec.granularity = granularity;
      bspec.native = native;
      bspecs.push_back(bspec);
    }
  };
  build_specs();
  std::vector<std::vector<size_t>> fparts =
      df::PartitionRowsByKey(*working, fspecs, num_partitions);

  // Pass 1: per-partition duplicate detection. Equal key tuples are
  // colocated, so a duplicate in any partition == a duplicate the
  // whole-table index would have seen, and the encoders can be dropped
  // right away (bounding resident memory to in-flight partitions).
  std::vector<uint8_t> has_dup(num_partitions, 0);
  ParallelFor(num_partitions, 0, [&](size_t p) {
    if (fparts[p].empty()) return;
    df::DataFrame sub = TakeKeyColumns(*working, fidx, fparts[p]);
    df::KeyEncoder encoder(sub, local_idx, key_opts);
    has_dup[p] = encoder.HasDuplicates() ? 1 : 0;
  });
  if (std::find(has_dup.begin(), has_dup.end(), 1) != has_dup.end()) {
    df::AggregateOptions agg = options.aggregate;
    agg.partition_count = options.partition_count;
    agg.memory_budget_bytes = options.memory_budget_bytes;
    ARDA_ASSIGN_OR_RETURN(
        *working, df::GroupByAggregate(*working, foreign_key_cols, agg));
    build_specs();
    fparts = df::PartitionRowsByKey(*working, fspecs, num_partitions);
  }

  // Pass 2: probe. Every base row belongs to exactly one partition, and
  // its key — if present at all — can only live in the matching foreign
  // partition, so writes to `matches` are disjoint.
  std::vector<std::vector<size_t>> bparts =
      df::PartitionRowsByKey(base, bspecs, num_partitions);
  ParallelFor(num_partitions, 0, [&](size_t p) {
    if (bparts[p].empty() || fparts[p].empty()) return;
    df::DataFrame fsub = TakeKeyColumns(*working, fidx, fparts[p]);
    df::KeyEncoder encoder(fsub, local_idx, key_opts);
    df::DataFrame bsub = TakeKeyColumns(base, hard_base_idx, bparts[p]);
    std::vector<uint64_t> gids(bparts[p].size());
    encoder.ProbeAll(bsub, local_idx, gids.data());
    for (size_t i = 0; i < bparts[p].size(); ++i) {
      const size_t r = bparts[p][i];
      bool any_null = false;
      for (size_t bi : hard_base_idx) {
        if (base.col(bi).IsNull(r)) {
          any_null = true;
          break;
        }
      }
      if (any_null) continue;
      if (gids[i] != df::KeyEncoder::kMiss) {
        (*matches)[r].low = fparts[p][encoder.group_first_row()[gids[i]]];
      }
    }
  });
  return Status::Ok();
}

}  // namespace

const char* SoftJoinMethodName(SoftJoinMethod method) {
  switch (method) {
    case SoftJoinMethod::kHardExact:
      return "hard";
    case SoftJoinMethod::kNearest:
      return "nearest";
    case SoftJoinMethod::kTwoWayNearest:
      return "2-way";
  }
  return "unknown";
}

Result<df::DataFrame> ExecuteLeftJoin(const df::DataFrame& base,
                                      const df::DataFrame& foreign,
                                      const discovery::CandidateJoin& cand,
                                      const JoinOptions& options, Rng* rng) {
  if (cand.keys.empty()) {
    return Status::InvalidArgument("candidate join has no keys");
  }
  trace::TraceSpan join_span("join.execute", "join", cand.foreign_table);
  metrics::IncrementCounter("join.executions_total");
  // Validate keys and classify.
  std::vector<discovery::JoinKeyPair> hard_keys;
  const discovery::JoinKeyPair* soft_key = nullptr;
  for (const discovery::JoinKeyPair& key : cand.keys) {
    if (!base.HasColumn(key.base_column)) {
      return Status::NotFound("base key column missing: " + key.base_column);
    }
    if (!foreign.HasColumn(key.foreign_column)) {
      return Status::NotFound("foreign key column missing: " +
                              key.foreign_column);
    }
    bool treat_soft = key.kind == discovery::KeyKind::kSoft &&
                      options.soft_method != SoftJoinMethod::kHardExact;
    if (treat_soft) {
      if (!base.col(key.base_column).IsNumeric() ||
          !foreign.col(key.foreign_column).IsNumeric()) {
        return Status::InvalidArgument("soft keys must be numeric: " +
                                       key.base_column);
      }
      if (soft_key != nullptr) {
        return Status::InvalidArgument(
            "composite keys support at most one soft key");
      }
      soft_key = &key;
    } else {
      hard_keys.push_back(key);
    }
  }

  // Optional time resampling: align a finer-grained foreign key to the
  // base key's granularity. Applies to any numeric soft-kind key, for all
  // soft methods including hard-exact (the paper's "time-resampled hard
  // join").
  df::DataFrame working = foreign;
  const discovery::JoinKeyPair* numeric_key = nullptr;
  for (const discovery::JoinKeyPair& key : cand.keys) {
    if (key.kind == discovery::KeyKind::kSoft &&
        base.col(key.base_column).IsNumeric() &&
        foreign.col(key.foreign_column).IsNumeric()) {
      numeric_key = &key;
      break;
    }
  }
  double bucket_granularity = 0.0;
  if (options.time_resample && numeric_key != nullptr) {
    double g_base = DetectGranularity(base.col(numeric_key->base_column));
    double g_foreign =
        DetectGranularity(foreign.col(numeric_key->foreign_column));
    if (g_base > 0.0 && g_foreign > 0.0 && g_base > 1.5 * g_foreign) {
      ARDA_ASSIGN_OR_RETURN(
          working, TimeResample(working, numeric_key->foreign_column, g_base,
                                options.aggregate));
      if (soft_key == nullptr) {
        // Hard-exact matching on a resampled key: bucket the base values
        // the same way so representatives align.
        bucket_granularity = g_base;
      }
    }
  }

  // Column-name lists on the (possibly resampled) foreign table.
  std::vector<std::string> foreign_key_cols;
  for (const discovery::JoinKeyPair& key : cand.keys) {
    foreign_key_cols.push_back(key.foreign_column);
  }
  std::vector<std::string> hard_foreign_cols;
  std::vector<std::string> hard_base_cols;
  for (const discovery::JoinKeyPair& key : hard_keys) {
    hard_foreign_cols.push_back(key.foreign_column);
    hard_base_cols.push_back(key.base_column);
  }

  // Interned hard keys: the foreign side's key tuples are
  // dictionary-encoded once, and base rows probe the dictionaries with no
  // per-row string composition. Bucketing for time-resampled hard joins
  // applies on the probe side only, exactly like the old per-row bucketed
  // key composition.
  std::vector<size_t> hard_base_idx;
  df::KeyEncoder::Options key_opts;
  for (const discovery::JoinKeyPair& hk : hard_keys) {
    const df::Column& col = base.col(hk.base_column);
    hard_base_idx.push_back(base.ColumnIndex(hk.base_column));
    key_opts.probe_types.push_back(col.type());
    key_opts.probe_granularity.push_back(
        bucket_granularity > 0.0 &&
                hk.kind == discovery::KeyKind::kSoft && col.IsNumeric()
            ? bucket_granularity
            : 0.0);
  }

  ARDA_FAULT_POINT(fault::kJoinKeyEncode);

  const size_t n = base.NumRows();
  std::vector<Match> matches(n);

  // Hard-only joins with a memory budget (or an explicit partition count)
  // take the radix-partitioned path; soft joins need the whole foreign
  // table sorted per hard-key group for nearest-neighbour matching and
  // stay single-pass.
  const size_t num_partitions =
      soft_key == nullptr
          ? df::ChoosePartitionCount(options.partition_count,
                                     options.memory_budget_bytes,
                                     df::EstimateFrameBytes(working) +
                                         df::EstimateFrameBytes(base))
          : 1;

  if (soft_key == nullptr && num_partitions > 1 &&
      working.NumRows() > 0 && n > 0) {
    ARDA_RETURN_IF_ERROR(PartitionedHardJoin(
        base, &working, foreign_key_cols, hard_foreign_cols, hard_base_idx,
        key_opts, options, num_partitions, &matches));
  } else if (soft_key == nullptr) {
    // One-to-many handling: pre-aggregate so each key combination appears
    // exactly once; hard joins aggregate only when the foreign key tuples
    // repeat, which the first index build detects for free (with no soft
    // key, foreign_key_cols and hard_foreign_cols coincide).
    df::KeyEncoder index(working, hard_foreign_cols, key_opts);
    if (index.HasDuplicates()) {
      ARDA_ASSIGN_OR_RETURN(
          working, df::GroupByAggregate(working, foreign_key_cols, index,
                                        options.aggregate));
      index = df::KeyEncoder(working, hard_foreign_cols, key_opts);
    }

    // Resolve every probe row's hard-key group id in one SIMD batch; the
    // per-row loop below keeps the any-null skip semantics unchanged.
    std::vector<uint64_t> gids(n);
    index.ProbeAll(base, hard_base_idx, gids.data());

    // Pure hash join on the interned composite hard key; the first
    // foreign row of each key group wins, matching the old
    // emplace-keeps-first index.
    for (size_t r = 0; r < n; ++r) {
      bool any_null = false;
      for (const std::string& name : hard_base_cols) {
        if (base.col(name).IsNull(r)) {
          any_null = true;
          break;
        }
      }
      if (any_null) continue;
      const uint64_t gid = gids[r];
      if (gid != df::KeyEncoder::kMiss) {
        matches[r].low = index.group_first_row()[gid];
      }
    }
  } else {
    // Soft joins always aggregate (interpolation needs a unique row per
    // key value).
    ARDA_ASSIGN_OR_RETURN(working,
                          df::GroupByAggregate(working, foreign_key_cols,
                                               options.aggregate));
    df::KeyEncoder index(working, hard_foreign_cols, key_opts);

    std::vector<uint64_t> gids(n);
    index.ProbeAll(base, hard_base_idx, gids.data());

    // Partition the foreign table by the hard part of the key, sort each
    // partition by the soft key, then match per base row.
    std::vector<std::vector<std::pair<double, size_t>>> partitions(
        index.num_groups());
    const df::Column& fsoft = working.col(soft_key->foreign_column);
    for (size_t r = 0; r < working.NumRows(); ++r) {
      if (fsoft.IsNull(r)) continue;
      partitions[index.GroupOf(r)].emplace_back(fsoft.NumericAt(r), r);
    }
    for (auto& rows : partitions) {
      std::sort(rows.begin(), rows.end());
    }
    const df::Column& bsoft = base.col(soft_key->base_column);
    for (size_t r = 0; r < n; ++r) {
      if (bsoft.IsNull(r)) continue;
      bool any_null = false;
      for (const std::string& name : hard_base_cols) {
        if (base.col(name).IsNull(r)) {
          any_null = true;
          break;
        }
      }
      if (any_null) continue;
      const uint64_t gid = gids[r];
      if (gid == df::KeyEncoder::kMiss || partitions[gid].empty()) continue;
      matches[r] = MatchSoft(partitions[gid], bsoft.NumericAt(r),
                             options.soft_method, options.soft_tolerance);
    }
  }

  // Assemble the output: all base columns, then foreign value columns.
  df::DataFrame out = base;
  std::string prefix = options.column_prefix.empty()
                           ? cand.foreign_table + "."
                           : options.column_prefix;
  df::DataFrame joined_cols;
  for (size_t ci = 0; ci < working.NumCols(); ++ci) {
    const df::Column& src = working.col(ci);
    if (std::find(foreign_key_cols.begin(), foreign_key_cols.end(),
                  src.name()) != foreign_key_cols.end()) {
      continue;  // key columns are already represented in the base table
    }
    const bool interpolate =
        soft_key != nullptr &&
        options.soft_method == SoftJoinMethod::kTwoWayNearest &&
        src.IsNumeric();
    df::Column dst =
        interpolate ? df::Column::Empty(src.name(), df::DataType::kDouble)
                    : df::Column::Empty(src.name(), src.type());
    for (size_t r = 0; r < n; ++r) {
      const Match& m = matches[r];
      if (m.low == kNoMatch) {
        dst.AppendNull();
        continue;
      }
      if (m.high == kNoMatch) {
        if (interpolate) {
          if (src.IsNull(m.low)) {
            dst.AppendNull();
          } else {
            dst.AppendDouble(src.NumericAt(m.low));
          }
        } else {
          dst.AppendFrom(src, m.low);
        }
        continue;
      }
      // Two-way interpolation between rows m.low and m.high.
      if (src.IsNumeric()) {
        if (src.IsNull(m.low) || src.IsNull(m.high)) {
          dst.AppendNull();
        } else {
          dst.AppendDouble(m.lambda * src.NumericAt(m.low) +
                           (1.0 - m.lambda) * src.NumericAt(m.high));
        }
      } else {
        size_t pick = rng->Bernoulli(m.lambda) ? m.low : m.high;
        dst.AppendFrom(src, pick);
      }
    }
    ARDA_RETURN_IF_ERROR(joined_cols.AddColumn(std::move(dst)));
  }
  ARDA_RETURN_IF_ERROR(out.HStack(joined_cols, prefix));
  metrics::ObserveSize("join.output_rows", static_cast<double>(out.NumRows()));
  metrics::ObserveSize("join.output_cols", static_cast<double>(out.NumCols()));
  return out;
}

}  // namespace arda::join
