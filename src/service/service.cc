#include "service/service.h"

#include <utility>

#include "core/options.h"
#include "core/report_io.h"
#include "dataframe/csv.h"
#include "simd/simd.h"
#include "util/fault.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/trace.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define ARDA_SERVICE_HAVE_PIPE 1
#endif

#include <future>

namespace arda::service {

namespace {

// Response payloads are json::Serialize output (members in sorted key
// order), so two processes building the same logical response agree on
// the bytes — the service half of the byte-identity contract. Status and
// error responses carry the request id for log correlation; augment "ok"
// responses never do (they ARE the byte-identity surface, and two
// clients sending the same request must read the same bytes).
std::string StatusResponse(const char* status, const std::string& error,
                           const std::string& request_id = "") {
  std::map<std::string, json::Value> members;
  members.emplace("status", json::Value::MakeString(status));
  if (!error.empty()) {
    members.emplace("error", json::Value::MakeString(error));
  }
  if (!request_id.empty()) {
    members.emplace("request_id", json::Value::MakeString(request_id));
  }
  return json::Serialize(json::Value::MakeObject(std::move(members)));
}

std::string ShuttingDownResponse(const std::string& request_id) {
  return StatusResponse("shutting_down",
                        "server is draining; retry against a new instance",
                        request_id);
}

// The request fields that determine augmentation results, in their
// canonical (CLI-equivalent) spelling. `threads` is deliberately not one
// of them: results are thread-count-invariant, so requests differing only
// in `threads` share a resident result.
core::RunOptions OptionsFromRequest(const json::Value& request) {
  core::RunOptions options;
  options.task = request.StringOr("task", options.task);
  options.selector = request.StringOr("selector", options.selector);
  options.plan = request.StringOr("plan", options.plan);
  options.plan_order = request.StringOr("plan_order", options.plan_order);
  options.soft_join = request.StringOr("soft_join", options.soft_join);
  options.seed = static_cast<uint64_t>(
      request.IntOr("seed", static_cast<int64_t>(options.seed)));
  options.num_threads = static_cast<size_t>(request.IntOr("threads", 0));
  // Like `threads`, `memory_budget` never affects results (partitioned
  // kernels are bit-identical to single-pass), so it is also excluded
  // from the canonical key below.
  options.memory_budget_bytes =
      static_cast<uint64_t>(request.IntOr("memory_budget", 0));
  return options;
}

std::string CanonicalAugmentKey(const json::Value& request,
                                uint64_t generation) {
  const core::RunOptions options = OptionsFromRequest(request);
  std::map<std::string, json::Value> members;
  members.emplace("base",
                  json::Value::MakeString(request.StringOr("base", "")));
  members.emplace("target",
                  json::Value::MakeString(request.StringOr("target", "")));
  members.emplace("task", json::Value::MakeString(options.task));
  members.emplace("selector", json::Value::MakeString(options.selector));
  members.emplace("plan", json::Value::MakeString(options.plan));
  members.emplace("plan_order",
                  json::Value::MakeString(options.plan_order));
  members.emplace("soft_join", json::Value::MakeString(options.soft_join));
  members.emplace("seed", json::Value::MakeInt(
                              static_cast<int64_t>(options.seed)));
  return json::Serialize(json::Value::MakeObject(std::move(members))) +
         "@" + StrFormat("%llu", static_cast<unsigned long long>(generation));
}

}  // namespace

ArdaService::ArdaService(ServiceConfig config)
    : config_(std::move(config)) {}

ArdaService::~ArdaService() {
  if (started_) {
    BeginShutdown();
    Wait();
  }
#if defined(ARDA_SERVICE_HAVE_PIPE)
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
#endif
}

Result<ArdaService::Snapshot> ArdaService::LoadSnapshot(
    const std::string& data_dir, const std::string& table_cache,
    size_t load_threads, bool map_cache, uint64_t generation,
    const discovery::DataRepository* base) {
  Snapshot snapshot;
  snapshot.generation = generation;
  // Ingest starts from a copy of the serving repository: the copy shares
  // every frame (copy-on-write at table granularity), LoadDirectory
  // replaces only the tables it re-loads, and tables whose `.ardac` cache
  // is fresh cost a fingerprint check instead of a parse. The published
  // snapshot is never mutated — in-flight requests keep the shared_ptr
  // they started with.
  auto repo = base == nullptr
                  ? std::make_shared<discovery::DataRepository>()
                  : std::make_shared<discovery::DataRepository>(*base);
  discovery::LoadOptions load_options;
  load_options.csv.num_threads = load_threads;
  // Out-of-core mode: serve fresh v3 caches through an mmap. The frames
  // hold the mapping alive through shared ownership, so the COW swap
  // below never unmaps a table an in-flight request still reads — the
  // mapping is released only when the last reader drops its snapshot.
  load_options.map_cache = map_cache;
  discovery::LoadStats stats;
  ARDA_RETURN_IF_ERROR(
      repo->LoadDirectory(data_dir, table_cache, load_options, &stats));
  for (const discovery::IngestSkip& fallback : stats.fallbacks) {
    snapshot.ingest_skips.push_back(
        {fallback.table, "ingest", fallback.reason});
  }
  snapshot.tables_loaded = stats.tables_loaded;
  snapshot.cache_hits = stats.cache_hits;
  snapshot.repo = std::move(repo);
  return snapshot;
}

Status ArdaService::Start() {
  ARDA_CHECK(!started_);
  ARDA_ASSIGN_OR_RETURN(
      Snapshot snapshot,
      LoadSnapshot(config_.data_dir, config_.table_cache,
                   config_.load_threads, config_.map_cache,
                   /*generation=*/1));
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::make_shared<const Snapshot>(std::move(snapshot));
    next_generation_ = 2;
  }
  metrics::SetGauge("service.snapshot_generation", 1.0);

#if defined(ARDA_SERVICE_HAVE_PIPE)
  int fds[2];
  if (::pipe(fds) != 0) {
    return Status::IoError("cannot create service wake pipe");
  }
  // The wake byte is written at most once and never drained, so every
  // level-triggered poller wakes; non-blocking guards the writer anyway.
  ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
  ::fcntl(fds[1], F_SETFL, O_NONBLOCK);
  wake_read_fd_ = fds[0];
  wake_write_fd_ = fds[1];
#endif

  ARDA_ASSIGN_OR_RETURN(listener_, ListenLocal(config_.port));
  ARDA_ASSIGN_OR_RETURN(port_, BoundPort(listener_));
  accept_thread_ = std::thread(&ArdaService::AcceptLoop, this);
  started_ = true;
  log::Info("service.started",
            {log::Field::Int("port", static_cast<int64_t>(port_)),
             log::Field::Uint("tables_loaded",
                              snapshot_info().tables_loaded)});
  return Status::Ok();
}

SnapshotInfo ArdaService::snapshot_info() const {
  std::shared_ptr<const Snapshot> snapshot = CurrentSnapshot();
  SnapshotInfo info;
  if (snapshot != nullptr) {
    info.generation = snapshot->generation;
    info.tables_loaded = snapshot->tables_loaded;
    info.cache_hits = snapshot->cache_hits;
  }
  return info;
}

void ArdaService::BeginShutdown() {
  bool expected = false;
  if (!shutting_down_.compare_exchange_strong(expected, true)) return;
  log::Info("service.draining");
#if defined(ARDA_SERVICE_HAVE_PIPE)
  if (wake_write_fd_ >= 0) {
    // Single wake byte; see Start. A full pipe would mean it was already
    // written, which is just as good.
    [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, "x", 1);
  }
#endif
}

void ArdaService::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (joined_) return;
    connections.swap(connections_);
    joined_ = true;
  }
  for (std::thread& t : connections) {
    if (t.joinable()) t.join();
  }
}

std::shared_ptr<const ArdaService::Snapshot> ArdaService::CurrentSnapshot()
    const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

void ArdaService::AcceptLoop() {
  for (;;) {
    Result<Socket> conn = AcceptInterruptible(listener_, wake_read_fd_);
    if (!conn.ok()) break;  // shutdown wake or fatal socket error
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (shutting_down_.load(std::memory_order_relaxed)) break;
    connections_.emplace_back(&ArdaService::ConnectionLoop, this,
                              std::move(conn).value());
  }
  listener_.Close();
}

void ArdaService::ConnectionLoop(Socket socket) {
  // The connection id is minted at accept; every request on this
  // connection derives its request id from it, so one id correlates the
  // request log record, the trace span and any error response.
  const uint64_t conn_id =
      next_conn_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  uint64_t request_seq = 0;
  log::Debug("service.connection_open",
             {log::Field::Uint("conn", conn_id)});
  for (;;) {
    if (shutting_down_.load(std::memory_order_relaxed)) break;
    Result<std::string> request = RecvFrame(socket.fd(), wake_read_fd_);
    if (!request.ok()) break;  // clean close, shutdown wake, or error
    // A request already on the wire when shutdown begins still gets a
    // response (graceful drain); the next poll breaks the loop.
    const std::string request_id = StrFormat(
        "c%llu-%llu", static_cast<unsigned long long>(conn_id),
        static_cast<unsigned long long>(++request_seq));
    const std::string response = HandleRequest(request.value(), request_id);
    if (!SendFrame(socket.fd(), response).ok()) break;
  }
  log::Debug("service.connection_close",
             {log::Field::Uint("conn", conn_id),
              log::Field::Uint("requests", request_seq)});
}

std::string ArdaService::HandleRequest(const std::string& request_json) {
  return HandleRequest(
      request_json,
      StrFormat("r%llu",
                static_cast<unsigned long long>(
                    fallback_request_seq_.fetch_add(
                        1, std::memory_order_relaxed) +
                    1)));
}

std::string ArdaService::HandleRequest(const std::string& request_json,
                                       const std::string& request_id) {
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  metrics::IncrementCounter("service.requests_total");
  Stopwatch watch;
  std::string type;
  std::vector<trace::StageCollector::Entry> stages;
  Result<std::string> response =
      Dispatch(request_json, request_id, &type, &stages);
  const double elapsed = watch.ElapsedSeconds();
  metrics::ObserveLatency("service.request_seconds", elapsed);
  std::string out;
  if (response.ok()) {
    out = std::move(response).value();
  } else {
    metrics::IncrementCounter("service.request_errors_total");
    out = StatusResponse("error", response.status().ToString(),
                         request_id);
  }
  if (log::Enabled(log::Level::kInfo)) {
    log::Info("service.request",
              {log::Field::Str("request_id", request_id),
               log::Field::Str("type", type.empty() ? "?" : type),
               log::Field::F64("elapsed_ms", elapsed * 1000.0),
               log::Field::Bool("ok", response.ok())});
  }
  const double elapsed_ms = elapsed * 1000.0;
  if (config_.slow_request_ms > 0.0 &&
      elapsed_ms >= config_.slow_request_ms) {
    // The offender record carries the full per-stage breakdown collected
    // during the run, so "where did the time go" is answerable from the
    // log alone, without a trace armed.
    std::vector<log::Field> fields;
    fields.push_back(log::Field::Str("request_id", request_id));
    fields.push_back(log::Field::Str("type", type.empty() ? "?" : type));
    fields.push_back(log::Field::F64("elapsed_ms", elapsed_ms));
    fields.push_back(
        log::Field::F64("threshold_ms", config_.slow_request_ms));
    for (const trace::StageCollector::Entry& e : stages) {
      fields.push_back(log::Field::F64(
          std::string("stage_ms.") + e.stage, e.seconds * 1000.0));
    }
    log::Log(log::Level::kWarn, "service.slow_request", fields);
    metrics::IncrementCounter("service.slow_requests_total");
  }
  return out;
}

Result<std::string> ArdaService::Dispatch(
    const std::string& request_json, const std::string& request_id,
    std::string* type_out,
    std::vector<trace::StageCollector::Entry>* stages_out) {
  // The admission/decode fault site: an armed `service_accept` rejects
  // the request with an error response while the connection and server
  // keep going.
  ARDA_FAULT_POINT(fault::kServiceAccept);
  ARDA_ASSIGN_OR_RETURN(json::Value request, json::Parse(request_json));
  const std::string type = request.StringOr("type", "");
  *type_out = type;
  trace::TraceSpan span("service.request", "service",
                        type + " id=" + request_id);
  if (type == "ping") return HandlePing();
  if (type == "stats") return HandleStats();
  if (type == "augment") {
    return HandleAugment(request, request_id, stages_out);
  }
  if (type == "ingest") return HandleIngest(request, request_id);
  if (type == "shutdown") {
    // The response is serialized back on the connection thread after this
    // returns, so the client sees the acknowledgement before the drain
    // closes its connection.
    log::Info("service.shutdown_requested",
              {log::Field::Str("request_id", request_id)});
    BeginShutdown();
    return StatusResponse("ok", "", request_id);
  }
  return Status::InvalidArgument("unknown request type: " +
                                 (type.empty() ? "(missing)" : type));
}

std::string ArdaService::HandlePing() {
  std::map<std::string, json::Value> members;
  const SnapshotInfo info = snapshot_info();
  members.emplace("server", json::Value::MakeString("arda_serve"));
  members.emplace("simd_level",
                  json::Value::MakeString(simd::DispatchSummary()));
  members.emplace("snapshot_generation",
                  json::Value::MakeInt(static_cast<int64_t>(
                      info.generation)));
  members.emplace("status", json::Value::MakeString("ok"));
  members.emplace("tables_loaded",
                  json::Value::MakeInt(static_cast<int64_t>(
                      info.tables_loaded)));
  return json::Serialize(json::Value::MakeObject(std::move(members)));
}

std::string ArdaService::HandleStats() {
  // Refresh the derived gauges first so the embedded metrics snapshot
  // (and the explicit latency fields below) report live window
  // quantiles, same as a /metrics scrape.
  PublishTelemetryGauges();
  const SnapshotInfo info = snapshot_info();
  size_t queue_depth;
  {
    std::lock_guard<std::mutex> lock(admit_mu_);
    queue_depth = inflight_;
  }
  size_t resident;
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    resident = results_.size();
  }
  // Not part of the byte-identity surface (latency and cumulative metrics
  // are never deterministic), so the embedded metrics snapshot keeps the
  // pretty-printed MetricsToJson layout dashboards already parse.
  std::string out = "{\"status\": \"ok\", ";
  out += StrFormat("\"snapshot_generation\": %llu, ",
                   static_cast<unsigned long long>(info.generation));
  out += StrFormat("\"tables_loaded\": %zu, ", info.tables_loaded);
  out += StrFormat("\"queue_depth\": %zu, ", queue_depth);
  out += StrFormat("\"resident_results\": %zu, ", resident);
  out += StrFormat(
      "\"requests_total\": %llu, ",
      static_cast<unsigned long long>(
          requests_total_.load(std::memory_order_relaxed)));
  {
    metrics::Histogram& latency = metrics::GlobalRegistry().GetHistogram(
        "service.request_seconds", metrics::LatencyBucketsSeconds());
    out += StrFormat(
        "\"request_latency\": {\"p50\": %.6g, \"p90\": %.6g, "
        "\"p99\": %.6g}, ",
        latency.WindowQuantile(0.50), latency.WindowQuantile(0.90),
        latency.WindowQuantile(0.99));
  }
  out += "\"metrics\": " +
         core::MetricsToJson(metrics::GlobalRegistry().Snapshot()) + "}";
  return out;
}

Result<std::string> ArdaService::HandleAugment(
    const json::Value& request, const std::string& request_id,
    std::vector<trace::StageCollector::Entry>* stages_out) {
  if (shutting_down_.load(std::memory_order_relaxed)) {
    return ShuttingDownResponse(request_id);
  }
  std::shared_ptr<const Snapshot> snapshot = CurrentSnapshot();
  const std::string key = CanonicalAugmentKey(request,
                                              snapshot->generation);
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    auto it = results_.find(key);
    if (it != results_.end()) {
      metrics::IncrementCounter("service.result_cache_hits_total");
      return it->second;
    }
  }

  // Admission gate: bounded concurrent admissions, explicit overload
  // rejection instead of unbounded queueing.
  {
    std::lock_guard<std::mutex> lock(admit_mu_);
    if (inflight_ >= config_.max_queue_depth) {
      metrics::IncrementCounter("service.overload_rejected_total");
      log::Warn("service.overloaded",
                {log::Field::Str("request_id", request_id),
                 log::Field::Uint("inflight", inflight_)});
      return StatusResponse(
          "overloaded",
          StrFormat("admission queue full (%zu in flight)", inflight_),
          request_id);
    }
    ++inflight_;
    metrics::SetGauge("service.queue_depth",
                      static_cast<double>(inflight_));
    trace::CounterEvent("service.queue_depth",
                        static_cast<double>(inflight_));
  }

  Stopwatch watch;
  std::promise<Result<std::string>> promise;
  std::future<Result<std::string>> future = promise.get_future();
  GlobalThreadPool().Submit(
      [this, &request, &snapshot, &promise, stages_out] {
        promise.set_value(RunAugment(request, snapshot, stages_out));
      });
  Result<std::string> result = future.get();
  {
    std::lock_guard<std::mutex> lock(admit_mu_);
    --inflight_;
    metrics::SetGauge("service.queue_depth",
                      static_cast<double>(inflight_));
    trace::CounterEvent("service.queue_depth",
                        static_cast<double>(inflight_));
  }
  metrics::ObserveLatency("service.augment_seconds",
                          watch.ElapsedSeconds());
  if (!result.ok()) return result.status();

  {
    std::lock_guard<std::mutex> lock(results_mu_);
    if (results_.emplace(key, result.value()).second) {
      results_order_.push_back(key);
      while (results_.size() > config_.max_resident_results &&
             !results_order_.empty()) {
        results_.erase(results_order_.front());
        results_order_.pop_front();
      }
    }
  }
  return result;
}

Result<std::string> ArdaService::RunAugment(
    const json::Value& request,
    std::shared_ptr<const Snapshot> snapshot,
    std::vector<trace::StageCollector::Entry>* stages_out) {
  // Collect the per-stage wall times of this run (on this pool thread)
  // for the slow-request log record. The caller blocks on the future, so
  // writing into its vector after the scopes close is race-free.
  trace::StageCollector collector;
  Result<std::string> result = [&]() -> Result<std::string> {
    trace::StageScope scope("service.run_augment");
  const std::string base_name = request.StringOr("base", "");
  const std::string target = request.StringOr("target", "");
  if (base_name.empty() || target.empty()) {
    return Status::InvalidArgument(
        "augment request needs \"base\" and \"target\"");
  }
  const core::RunOptions options = OptionsFromRequest(request);
  ARDA_ASSIGN_OR_RETURN(core::ArdaConfig config,
                        core::MakeArdaConfig(options));
  ARDA_ASSIGN_OR_RETURN(ml::TaskType task_type,
                        core::ParseTaskType(options.task));
  ARDA_ASSIGN_OR_RETURN(const df::DataFrame* base,
                        snapshot->repo->Get(base_name));

  core::AugmentationTask task;
  task.base = *base;
  task.target_column = target;
  task.task = task_type;
  task.repo = snapshot->repo.get();
  task.base_table_name = base_name;
  task.ingest_skips = snapshot->ingest_skips;
  // No interrupt_check: an admitted request always runs to completion,
  // even during graceful shutdown (the drain waits for it).

  core::Arda arda(config);
  ARDA_ASSIGN_OR_RETURN(core::ArdaReport report, arda.Run(task));

  std::map<std::string, json::Value> members;
  members.emplace("generation",
                  json::Value::MakeInt(static_cast<int64_t>(
                      snapshot->generation)));
  // The deterministic report rides as an escaped JSON string: unescaping
  // reproduces DeterministicReportJson byte-for-byte, which is what the
  // byte-identity tests and the bench --assert-identical mode compare
  // against the CLI's --canonical-report output.
  members.emplace("report_json", json::Value::MakeString(
                                     core::DeterministicReportJson(report)));
  members.emplace("status", json::Value::MakeString("ok"));
  return json::Serialize(json::Value::MakeObject(std::move(members)));
  }();
  if (stages_out != nullptr) *stages_out = collector.entries();
  return result;
}

Result<std::string> ArdaService::HandleIngest(
    const json::Value& request, const std::string& request_id) {
  if (shutting_down_.load(std::memory_order_relaxed)) {
    return ShuttingDownResponse(request_id);
  }
  // One ingest at a time; augment readers never block on this (they hold
  // their own shared_ptr to the snapshot they started with).
  std::lock_guard<std::mutex> ingest_lock(ingest_mu_);
  trace::StageScope scope("service.ingest");
  Stopwatch watch;
  const std::string data_dir =
      request.StringOr("data_dir", config_.data_dir);
  const std::string table_cache =
      request.StringOr("table_cache", config_.table_cache);
  uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    generation = next_generation_;
  }
  std::shared_ptr<const Snapshot> current = CurrentSnapshot();
  ARDA_ASSIGN_OR_RETURN(
      Snapshot snapshot,
      LoadSnapshot(data_dir, table_cache, config_.load_threads,
                   config_.map_cache, generation,
                   current == nullptr ? nullptr : current->repo.get()));
  // The swap fault site sits after the (expensive) load, modelling a
  // failure at the last moment: the new snapshot is discarded and the
  // previous one keeps serving (asserted by the fault-matrix tests).
  ARDA_FAULT_POINT(fault::kServiceIngest);
  std::map<std::string, json::Value> members;
  members.emplace("cache_hits",
                  json::Value::MakeInt(static_cast<int64_t>(
                      snapshot.cache_hits)));
  members.emplace("generation",
                  json::Value::MakeInt(static_cast<int64_t>(generation)));
  members.emplace("status", json::Value::MakeString("ok"));
  members.emplace("tables_loaded",
                  json::Value::MakeInt(static_cast<int64_t>(
                      snapshot.tables_loaded)));
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::make_shared<const Snapshot>(std::move(snapshot));
    next_generation_ = generation + 1;
  }
  metrics::IncrementCounter("service.ingests_total");
  metrics::SetGauge("service.snapshot_generation",
                    static_cast<double>(generation));
  metrics::ObserveLatency("service.ingest_seconds",
                          watch.ElapsedSeconds());
  log::Info("service.ingested",
            {log::Field::Str("request_id", request_id),
             log::Field::Uint("generation", generation),
             log::Field::F64("elapsed_ms",
                             watch.ElapsedSeconds() * 1000.0)});
  return json::Serialize(json::Value::MakeObject(std::move(members)));
}

bool ArdaService::Ready(std::string* reason) const {
  if (shutting_down_.load(std::memory_order_relaxed)) {
    if (reason != nullptr) *reason = "draining";
    return false;
  }
  if (CurrentSnapshot() == nullptr) {
    if (reason != nullptr) *reason = "no repository snapshot loaded";
    return false;
  }
  return true;
}

void ArdaService::PublishTelemetryGauges() {
  metrics::Registry& registry = metrics::GlobalRegistry();
  registry.AdvanceWindows(log::MonotonicSeconds());
  metrics::Histogram& latency = registry.GetHistogram(
      "service.request_seconds", metrics::LatencyBucketsSeconds());
  metrics::SetGauge("service.request_latency_p50",
                    latency.WindowQuantile(0.50));
  metrics::SetGauge("service.request_latency_p90",
                    latency.WindowQuantile(0.90));
  metrics::SetGauge("service.request_latency_p99",
                    latency.WindowQuantile(0.99));
  metrics::UpdatePeakRssGauge();
  simd::PublishLevelMetrics();
}

}  // namespace arda::service
