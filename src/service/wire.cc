#include "service/wire.h"

#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#define ARDA_HAVE_SOCKETS 1
#endif

namespace arda::service {

#if defined(ARDA_HAVE_SOCKETS)

namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " +
                         std::strerror(errno));
}

// Polls until `fd` is readable. When `wake_fd` fires first and `fd` has
// nothing pending, reports the interruption; `fd` readability wins when
// both are ready so a shutdown still drains requests already in flight
// on the wire.
Status WaitReadable(int fd, int wake_fd) {
  for (;;) {
    struct pollfd fds[2];
    fds[0] = {fd, POLLIN, 0};
    nfds_t count = 1;
    if (wake_fd >= 0) {
      fds[1] = {wake_fd, POLLIN, 0};
      count = 2;
    }
    int rc = ::poll(fds, count, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (fds[0].revents != 0) return Status::Ok();
    if (count == 2 && fds[1].revents != 0) {
      return Status::FailedPrecondition("interrupted");
    }
  }
}

// Reads exactly `len` bytes. `eof_ok` distinguishes a clean close before
// any byte (NotFound) from a close mid-record (IoError).
Status ReadExact(int fd, int wake_fd, char* out, size_t len, bool eof_ok) {
  size_t got = 0;
  while (got < len) {
    // Only wait for the wake fd before the first byte of a record: once a
    // peer has started a frame we finish reading it even during shutdown.
    ARDA_RETURN_IF_ERROR(WaitReadable(fd, got == 0 ? wake_fd : -1));
    ssize_t n = ::recv(fd, out + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) {
      if (got == 0 && eof_ok) return Status::NotFound("closed");
      return Status::IoError("connection closed mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status WriteExact(int fd, const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not SIGPIPE.
    ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int Socket::Release() {
  int fd = fd_;
  fd_ = -1;
  return fd;
}

Result<Socket> ListenLocal(uint16_t port, int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket");
  int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (::listen(sock.fd(), backlog) != 0) return Errno("listen");
  return sock;
}

Result<uint16_t> BoundPort(const Socket& socket) {
  struct sockaddr_in addr = {};
  socklen_t len = sizeof(addr);
  if (::getsockname(socket.fd(),
                    reinterpret_cast<struct sockaddr*>(&addr),
                    &len) != 0) {
    return Errno("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<Socket> ConnectLocal(uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket");
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc;
  do {
    rc = ::connect(sock.fd(), reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Errno("connect");
  int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Result<Socket> AcceptInterruptible(const Socket& listener, int wake_fd) {
  for (;;) {
    ARDA_RETURN_IF_ERROR(WaitReadable(listener.fd(), wake_fd));
    int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd < 0) {
      // A connection that vanished between poll and accept is not an
      // error for the server loop; wait for the next one.
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK) {
        continue;
      }
      return Errno("accept");
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Socket(fd);
  }
}

Status SendFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload too large");
  }
  const uint32_t len = static_cast<uint32_t>(payload.size());
  char prefix[4] = {static_cast<char>(len >> 24),
                    static_cast<char>(len >> 16),
                    static_cast<char>(len >> 8), static_cast<char>(len)};
  ARDA_RETURN_IF_ERROR(WriteExact(fd, prefix, sizeof(prefix)));
  return WriteExact(fd, payload.data(), payload.size());
}

Result<std::string> RecvFrame(int fd, int wake_fd) {
  char prefix[4];
  ARDA_RETURN_IF_ERROR(
      ReadExact(fd, wake_fd, prefix, sizeof(prefix), /*eof_ok=*/true));
  const uint32_t len =
      (static_cast<uint32_t>(static_cast<unsigned char>(prefix[0])) << 24) |
      (static_cast<uint32_t>(static_cast<unsigned char>(prefix[1])) << 16) |
      (static_cast<uint32_t>(static_cast<unsigned char>(prefix[2])) << 8) |
      static_cast<uint32_t>(static_cast<unsigned char>(prefix[3]));
  if (len > kMaxFrameBytes) {
    return Status::IoError("frame length prefix exceeds limit");
  }
  std::string payload(len, '\0');
  if (len > 0) {
    ARDA_RETURN_IF_ERROR(
        ReadExact(fd, -1, payload.data(), len, /*eof_ok=*/false));
  }
  return payload;
}

Result<size_t> RecvSome(int fd, int wake_fd, char* out, size_t cap) {
  for (;;) {
    ARDA_RETURN_IF_ERROR(WaitReadable(fd, wake_fd));
    ssize_t n = ::recv(fd, out, cap, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) return Status::NotFound("closed");
    return static_cast<size_t>(n);
  }
}

Status SendAll(int fd, std::string_view data) {
  return WriteExact(fd, data.data(), data.size());
}

Result<ServiceClient> ServiceClient::Connect(uint16_t port) {
  ARDA_ASSIGN_OR_RETURN(Socket sock, ConnectLocal(port));
  return ServiceClient(std::move(sock));
}

Result<std::string> ServiceClient::RoundTrip(std::string_view request) {
  ARDA_RETURN_IF_ERROR(SendFrame(socket_.fd(), request));
  return RecvFrame(socket_.fd());
}

Result<json::Value> ServiceClient::Call(const json::Value& request) {
  ARDA_ASSIGN_OR_RETURN(std::string response,
                        RoundTrip(json::Serialize(request)));
  return json::Parse(response);
}

#else  // !ARDA_HAVE_SOCKETS

// Non-POSIX stub: the service is a daemon feature; every entry point
// reports the platform gap instead of failing to link.
namespace {
Status Unsupported() {
  return Status::FailedPrecondition(
      "the augmentation service requires POSIX sockets");
}
}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  fd_ = other.fd_;
  other.fd_ = -1;
  return *this;
}
void Socket::Close() { fd_ = -1; }
int Socket::Release() {
  int fd = fd_;
  fd_ = -1;
  return fd;
}
Result<Socket> ListenLocal(uint16_t, int) { return Unsupported(); }
Result<uint16_t> BoundPort(const Socket&) { return Unsupported(); }
Result<Socket> ConnectLocal(uint16_t) { return Unsupported(); }
Result<Socket> AcceptInterruptible(const Socket&, int) {
  return Unsupported();
}
Status SendFrame(int, std::string_view) { return Unsupported(); }
Result<std::string> RecvFrame(int, int) { return Unsupported(); }
Result<size_t> RecvSome(int, int, char*, size_t) { return Unsupported(); }
Status SendAll(int, std::string_view) { return Unsupported(); }
Result<ServiceClient> ServiceClient::Connect(uint16_t) {
  return Unsupported();
}
Result<std::string> ServiceClient::RoundTrip(std::string_view) {
  return Unsupported();
}
Result<json::Value> ServiceClient::Call(const json::Value&) {
  return Unsupported();
}

#endif  // ARDA_HAVE_SOCKETS

}  // namespace arda::service
