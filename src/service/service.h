#ifndef ARDA_SERVICE_SERVICE_H_
#define ARDA_SERVICE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/arda.h"
#include "discovery/repository.h"
#include "service/wire.h"
#include "util/json.h"
#include "util/status.h"
#include "util/trace.h"

/// \file
/// Long-lived augmentation service (docs/service.md): loads the data
/// repository once (through the `.ardac` columnar cache), keeps it
/// resident, and serves concurrent augmentation requests over the wire
/// protocol in service/wire.h. The repository is published as an
/// immutable snapshot behind a shared_ptr; an `ingest` request builds a
/// replacement repository copy-on-write and swaps it in atomically, so
/// in-flight requests keep reading the snapshot they started with.

namespace arda::service {

/// Static service configuration (per-request knobs travel in the request
/// JSON instead).
struct ServiceConfig {
  /// Directory of *.csv tables, loaded at Start and re-loaded on ingest.
  std::string data_dir;
  /// `.ardac` columnar cache directory ("" = no cache).
  std::string table_cache;
  /// TCP port on 127.0.0.1 (0 = ephemeral; read back with port()).
  uint16_t port = 0;
  /// Admission-control bound: maximum augment requests admitted at once
  /// (queued on the thread pool or executing). Requests beyond it are
  /// rejected immediately with status "overloaded" instead of queuing
  /// without bound.
  size_t max_queue_depth = 8;
  /// Completed augment responses kept resident, keyed by (canonical
  /// request, snapshot generation); oldest entries are evicted first.
  size_t max_resident_results = 64;
  /// Threads used to parse CSVs at Start/ingest (0 = hardware
  /// concurrency).
  size_t load_threads = 0;
  /// Requests slower than this log a `service.slow_request` record with
  /// the full per-stage breakdown (docs/observability.md); 0 disables.
  double slow_request_ms = 0.0;
  /// Serve fresh v3 `.ardac` caches via mmap (discovery::LoadOptions::
  /// map_cache): the out-of-core repository mode. Column lifetime is tied
  /// to the mapping through shared ownership, so a COW ingest swap never
  /// unmaps a table an in-flight request still reads.
  bool map_cache = false;
};

/// What LoadDirectory produced for one published snapshot.
struct SnapshotInfo {
  uint64_t generation = 0;
  size_t tables_loaded = 0;
  size_t cache_hits = 0;
};

/// The daemon. Thread-safe after Start(): the accept loop, per-connection
/// threads and the thread-pool request tasks all run concurrently.
class ArdaService {
 public:
  explicit ArdaService(ServiceConfig config);
  /// Stops the server if still running (BeginShutdown + Wait).
  ~ArdaService();

  ArdaService(const ArdaService&) = delete;
  ArdaService& operator=(const ArdaService&) = delete;

  /// Loads the initial repository snapshot, binds the listening socket
  /// and starts the accept loop. Fails without side effects on an
  /// unreadable data directory or an unbindable port.
  Status Start();

  /// The bound TCP port (valid after a successful Start).
  uint16_t port() const { return port_; }

  /// Info about the currently published snapshot.
  SnapshotInfo snapshot_info() const;

  /// Starts a graceful shutdown: stop accepting connections, let
  /// in-flight requests finish, close idle connections. Safe to call from
  /// any thread, any number of times (a `shutdown` request and the signal
  /// path both funnel here).
  void BeginShutdown();

  /// True once BeginShutdown has been called (by any path).
  bool ShutdownRequested() const {
    return shutting_down_.load(std::memory_order_relaxed);
  }

  /// Blocks until the accept loop and every connection thread have
  /// exited. Call after BeginShutdown (or let a `shutdown` request
  /// trigger it).
  void Wait();

  /// Handles one request payload and returns the response payload —
  /// the single entry point used by both the socket path and in-process
  /// tests. Never throws; malformed requests produce an "error" response.
  /// The overload without an id mints a fallback one ("r<seq>"); the
  /// socket path passes the per-connection id generated at accept.
  /// Request ids never appear in augment "ok" responses (those are the
  /// byte-identity surface, docs/service.md) — only in logs, trace spans
  /// and status/error responses.
  std::string HandleRequest(const std::string& request_json);
  std::string HandleRequest(const std::string& request_json,
                            const std::string& request_id);

  /// Readiness probe for the telemetry endpoint's /readyz: true once a
  /// repository snapshot is published and the server is not draining.
  /// Stays true across a COW ingest swap (the old snapshot keeps
  /// serving); flips false on BeginShutdown. On false, `reason` (when
  /// non-null) gets a short explanation.
  bool Ready(std::string* reason = nullptr) const;

  /// Refreshes the exported telemetry derived from the registry: rotates
  /// the sliding quantile windows and publishes
  /// `service.request_latency_p50/p90/p99` gauges (live window quantiles
  /// of `service.request_seconds`), the peak-RSS gauge, and the SIMD
  /// level gauges. Called before every /metrics scrape and every `stats`
  /// response; safe from any thread.
  void PublishTelemetryGauges();

 private:
  struct Snapshot {
    uint64_t generation = 0;
    std::shared_ptr<const discovery::DataRepository> repo;
    /// Cache-fallback degradations recorded when this snapshot loaded;
    /// copied into every augment report (same as the CLI's ingest_skips).
    std::vector<core::SkippedCandidate> ingest_skips;
    size_t tables_loaded = 0;
    size_t cache_hits = 0;
  };

  std::shared_ptr<const Snapshot> CurrentSnapshot() const;
  /// Loads a snapshot from disk. `base` (when non-null) seeds the new
  /// repository as a copy-on-write copy of an existing one: unchanged
  /// tables keep sharing frames, re-loaded tables replace their entry in
  /// the copy only.
  static Result<Snapshot> LoadSnapshot(const std::string& data_dir,
                                       const std::string& table_cache,
                                       size_t load_threads, bool map_cache,
                                       uint64_t generation,
                                       const discovery::DataRepository*
                                           base = nullptr);

  /// Parses and dispatches one request; the Status arm of the result is
  /// what HandleRequest turns into an "error" response. `type_out` gets
  /// the request type for the request log; `stages_out` collects the
  /// per-stage breakdown of an augment run for slow-request records.
  Result<std::string> Dispatch(
      const std::string& request_json, const std::string& request_id,
      std::string* type_out,
      std::vector<trace::StageCollector::Entry>* stages_out);
  Result<std::string> HandleAugment(
      const json::Value& request, const std::string& request_id,
      std::vector<trace::StageCollector::Entry>* stages_out);
  Result<std::string> HandleIngest(const json::Value& request,
                                   const std::string& request_id);
  std::string HandleStats();
  std::string HandlePing();

  /// Runs one augment request on the calling (pool) thread; the stage
  /// breakdown of the run lands in `stages_out`.
  Result<std::string> RunAugment(
      const json::Value& request,
      std::shared_ptr<const Snapshot> snapshot,
      std::vector<trace::StageCollector::Entry>* stages_out);

  void AcceptLoop();
  void ConnectionLoop(Socket socket);

  ServiceConfig config_;
  uint16_t port_ = 0;
  Socket listener_;
  /// Self-pipe the accept/connection loops poll for shutdown wakeups
  /// (service-local, deliberately not the process-wide interrupt pipe so
  /// in-process tests can stop a server without tearing down the test).
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::atomic<bool> shutting_down_{false};
  bool started_ = false;

  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const Snapshot> snapshot_;
  uint64_t next_generation_ = 1;
  /// Serializes ingest requests (concurrent ingests would race on the
  /// generation; readers are never blocked by this).
  std::mutex ingest_mu_;

  /// Admission gate state: requests currently admitted (queued or
  /// executing on the pool).
  std::mutex admit_mu_;
  size_t inflight_ = 0;

  /// Resident results: canonical request key + generation -> response
  /// payload. FIFO eviction.
  std::mutex results_mu_;
  std::map<std::string, std::string> results_;
  std::deque<std::string> results_order_;

  std::atomic<uint64_t> requests_total_{0};
  /// Request-id generators: connections number themselves at accept and
  /// requests within a connection get a sequence ("c<conn>-<seq>");
  /// in-process callers without a connection get "r<seq>".
  std::atomic<uint64_t> next_conn_id_{0};
  std::atomic<uint64_t> fallback_request_seq_{0};

  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> connections_;
  bool joined_ = false;
};

}  // namespace arda::service

#endif  // ARDA_SERVICE_SERVICE_H_
