#ifndef ARDA_SERVICE_WIRE_H_
#define ARDA_SERVICE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/json.h"
#include "util/status.h"

/// \file
/// Wire protocol of the augmentation service (docs/service.md): a TCP
/// stream of length-prefixed JSON frames. Each frame is a 4-byte
/// big-endian unsigned payload length followed by exactly that many bytes
/// of UTF-8 JSON. The client sends one request frame and reads one
/// response frame; connections are persistent (any number of
/// request/response pairs) and either side closes to end the
/// conversation. Frames above kMaxFrameBytes are rejected so a corrupt
/// length prefix cannot make a peer allocate unbounded memory.

namespace arda::service {

/// Upper bound on a single frame payload (64 MiB).
inline constexpr size_t kMaxFrameBytes = 64u << 20;

/// Move-only RAII wrapper of a file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();
  /// Releases ownership of the descriptor without closing it.
  int Release();

 private:
  int fd_ = -1;
};

/// Opens a listening TCP socket on 127.0.0.1:`port` (port 0 picks an
/// ephemeral port; read it back with BoundPort).
Result<Socket> ListenLocal(uint16_t port, int backlog = 64);

/// The local port a socket is bound to.
Result<uint16_t> BoundPort(const Socket& socket);

/// Connects to 127.0.0.1:`port` (blocking).
Result<Socket> ConnectLocal(uint16_t port);

/// Accepts one connection from a listening socket. `wake_fd` (when >= 0)
/// is a second descriptor polled alongside: when it becomes readable
/// before a connection arrives, returns FailedPrecondition("interrupted")
/// without accepting — the server's shutdown path.
Result<Socket> AcceptInterruptible(const Socket& listener, int wake_fd);

/// Writes one frame (length prefix + payload). Retries EINTR/partial
/// writes; fails with InvalidArgument when the payload exceeds
/// kMaxFrameBytes and IoError when the peer is gone.
Status SendFrame(int fd, std::string_view payload);

/// Reads one frame payload. `wake_fd` as in AcceptInterruptible: a wake
/// with no pending data returns FailedPrecondition("interrupted"). A peer
/// that closes cleanly between frames returns NotFound("closed"); a close
/// mid-frame, an oversized length prefix, or any socket error returns
/// IoError.
Result<std::string> RecvFrame(int fd, int wake_fd = -1);

/// Raw-stream helpers for protocols that are not length-prefixed frames
/// (the telemetry HTTP endpoint rides on the same socket plumbing).
/// RecvSome blocks until at least one byte is readable and reads up to
/// `cap` bytes; a clean close returns NotFound("closed"), a wake with no
/// pending data FailedPrecondition("interrupted"), as above.
Result<size_t> RecvSome(int fd, int wake_fd, char* out, size_t cap);
/// Writes all of `data` (EINTR/partial-write safe, no SIGPIPE).
Status SendAll(int fd, std::string_view data);

/// A blocking request/response client of the service, used by the load
/// generator, the tests and the CI smoke lane.
class ServiceClient {
 public:
  /// Connects to a server on 127.0.0.1:`port`.
  static Result<ServiceClient> Connect(uint16_t port);

  /// Sends one raw request payload and returns the raw response payload.
  Result<std::string> RoundTrip(std::string_view request);

  /// Serializes `request`, round-trips it, and parses the response.
  Result<json::Value> Call(const json::Value& request);

 private:
  explicit ServiceClient(Socket socket) : socket_(std::move(socket)) {}
  Socket socket_;
};

}  // namespace arda::service

#endif  // ARDA_SERVICE_WIRE_H_
