#include "la/linalg.h"

#include <cmath>

#include "util/fault.h"

namespace arda::la {

Result<Matrix> Cholesky(const Matrix& a) {
  ARDA_FAULT_POINT(fault::kCholesky);
  ARDA_CHECK_EQ(a.rows(), a.cols());
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) {
          return Status::FailedPrecondition(
              "matrix is not positive definite");
        }
        l(i, j) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return l;
}

std::vector<double> ForwardSubstitute(const Matrix& l,
                                      const std::vector<double>& b) {
  const size_t n = l.rows();
  ARDA_CHECK_EQ(b.size(), n);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
  return y;
}

std::vector<double> BackwardSubstitute(const Matrix& l,
                                       const std::vector<double>& y) {
  const size_t n = l.rows();
  ARDA_CHECK_EQ(y.size(), n);
  std::vector<double> x(n);
  for (size_t ii = n; ii > 0; --ii) {
    size_t i = ii - 1;
    double sum = y[i];
    for (size_t k = i + 1; k < n; ++k) sum -= l(k, i) * x[k];
    x[i] = sum / l(i, i);
  }
  return x;
}

Result<std::vector<double>> SolveSpd(const Matrix& a,
                                     const std::vector<double>& b) {
  ARDA_ASSIGN_OR_RETURN(Matrix l, Cholesky(a));
  std::vector<double> y = ForwardSubstitute(l, b);
  return BackwardSubstitute(l, y);
}

Result<std::vector<double>> RidgeSolve(const Matrix& x,
                                       const std::vector<double>& y,
                                       double lambda) {
  ARDA_CHECK_EQ(x.rows(), y.size());
  ARDA_CHECK_GT(lambda, 0.0);
  const size_t d = x.cols();
  // Gram matrix X^T X + lambda I.
  Matrix gram(d, d);
  for (size_t r = 0; r < x.rows(); ++r) {
    const double* row = x.RowPtr(r);
    for (size_t i = 0; i < d; ++i) {
      const double xi = row[i];
      if (xi == 0.0) continue;
      double* grow = gram.RowPtr(i);
      for (size_t j = i; j < d; ++j) grow[j] += xi * row[j];
    }
  }
  for (size_t i = 0; i < d; ++i) {
    gram(i, i) += lambda;
    for (size_t j = 0; j < i; ++j) gram(i, j) = gram(j, i);
  }
  std::vector<double> rhs = x.TransposeMultiplyVec(y);
  Result<std::vector<double>> solved = SolveSpd(gram, rhs);
  if (solved.ok()) return solved;
  // Extremely ill-conditioned inputs: retry with a heavier diagonal.
  for (size_t i = 0; i < d; ++i) gram(i, i) += 1e-3 + lambda * 10.0;
  Result<std::vector<double>> retried = SolveSpd(gram, rhs);
  if (retried.ok()) return retried;
  return Status::FailedPrecondition(
      "ridge system is singular even after jittered regularization: " +
      retried.status().message());
}

ColumnStats ComputeColumnStats(const Matrix& x) {
  ColumnStats stats;
  const size_t n = x.rows();
  const size_t d = x.cols();
  stats.mean.assign(d, 0.0);
  stats.stddev.assign(d, 1.0);
  if (n == 0) return stats;
  for (size_t r = 0; r < n; ++r) {
    const double* row = x.RowPtr(r);
    for (size_t c = 0; c < d; ++c) stats.mean[c] += row[c];
  }
  for (size_t c = 0; c < d; ++c) stats.mean[c] /= static_cast<double>(n);
  std::vector<double> var(d, 0.0);
  for (size_t r = 0; r < n; ++r) {
    const double* row = x.RowPtr(r);
    for (size_t c = 0; c < d; ++c) {
      const double delta = row[c] - stats.mean[c];
      var[c] += delta * delta;
    }
  }
  for (size_t c = 0; c < d; ++c) {
    double sd = std::sqrt(var[c] / static_cast<double>(n));
    stats.stddev[c] = sd < 1e-12 ? 1.0 : sd;
  }
  return stats;
}

Matrix Standardize(const Matrix& x, const ColumnStats& stats) {
  ARDA_CHECK_EQ(stats.mean.size(), x.cols());
  Matrix out(x.rows(), x.cols());
  for (size_t r = 0; r < x.rows(); ++r) {
    const double* row = x.RowPtr(r);
    double* orow = out.RowPtr(r);
    for (size_t c = 0; c < x.cols(); ++c) {
      orow[c] = (row[c] - stats.mean[c]) / stats.stddev[c];
    }
  }
  return out;
}

FeatureMoments ComputeFeatureMoments(const Matrix& x) {
  // Columns of x are the observations (each feature vector lives in R^n).
  const size_t n = x.rows();
  const size_t d = x.cols();
  FeatureMoments moments;
  moments.mean.assign(n, 0.0);
  moments.covariance = Matrix(n, n);
  if (d == 0) return moments;
  for (size_t r = 0; r < n; ++r) {
    const double* row = x.RowPtr(r);
    double sum = 0.0;
    for (size_t c = 0; c < d; ++c) sum += row[c];
    moments.mean[r] = sum / static_cast<double>(d);
  }
  for (size_t c = 0; c < d; ++c) {
    // Accumulate (col - mu)(col - mu)^T.
    for (size_t i = 0; i < n; ++i) {
      const double di = x(i, c) - moments.mean[i];
      if (di == 0.0) continue;
      double* crow = moments.covariance.RowPtr(i);
      for (size_t j = i; j < n; ++j) {
        crow[j] += di * (x(j, c) - moments.mean[j]);
      }
    }
  }
  const double inv_d = 1.0 / static_cast<double>(d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      moments.covariance(i, j) *= inv_d;
      moments.covariance(j, i) = moments.covariance(i, j);
    }
  }
  return moments;
}

Matrix SampleMultivariateNormal(const FeatureMoments& moments, size_t count,
                                Rng* rng) {
  const size_t n = moments.mean.size();
  Matrix samples(n, count);  // each *column* is one sampled feature vector
  Matrix sigma = moments.covariance;
  // Jitter the diagonal until Cholesky succeeds (bounded retries).
  double jitter = 1e-8;
  Result<Matrix> chol = Cholesky(sigma);
  for (int attempt = 0; attempt < 6 && !chol.ok(); ++attempt) {
    for (size_t i = 0; i < n; ++i) sigma(i, i) += jitter;
    jitter *= 10.0;
    chol = Cholesky(sigma);
  }
  if (chol.ok()) {
    const Matrix& l = chol.value();
    std::vector<double> z(n);
    for (size_t s = 0; s < count; ++s) {
      for (size_t i = 0; i < n; ++i) z[i] = rng->Normal();
      for (size_t i = 0; i < n; ++i) {
        double sum = moments.mean[i];
        const double* lrow = l.RowPtr(i);
        for (size_t k = 0; k <= i; ++k) sum += lrow[k] * z[k];
        samples(i, s) = sum;
      }
    }
    return samples;
  }
  // Diagonal fallback: independent normals matching per-coordinate variance.
  for (size_t s = 0; s < count; ++s) {
    for (size_t i = 0; i < n; ++i) {
      double var = moments.covariance(i, i);
      double sd = var > 0.0 ? std::sqrt(var) : 1.0;
      samples(i, s) = rng->Normal(moments.mean[i], sd);
    }
  }
  return samples;
}

}  // namespace arda::la
