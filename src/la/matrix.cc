#include "la/matrix.h"

#include <cmath>

namespace arda::la {

std::vector<double> Matrix::Row(size_t r) const {
  ARDA_CHECK_LT(r, rows_);
  return std::vector<double>(data_.begin() + r * cols_,
                             data_.begin() + (r + 1) * cols_);
}

std::vector<double> Matrix::Col(size_t c) const {
  ARDA_CHECK_LT(c, cols_);
  std::vector<double> out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

void Matrix::SetRow(size_t r, const std::vector<double>& values) {
  ARDA_CHECK_LT(r, rows_);
  ARDA_CHECK_EQ(values.size(), cols_);
  std::copy(values.begin(), values.end(), data_.begin() + r * cols_);
}

void Matrix::SetCol(size_t c, const std::vector<double>& values) {
  ARDA_CHECK_LT(c, cols_);
  ARDA_CHECK_EQ(values.size(), rows_);
  for (size_t r = 0; r < rows_; ++r) data_[r * cols_ + c] = values[r];
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      out(c, r) = (*this)(r, c);
    }
  }
  return out;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  ARDA_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      const double* brow = other.RowPtr(k);
      double* orow = out.RowPtr(i);
      for (size_t j = 0; j < other.cols_; ++j) {
        orow[j] += aik * brow[j];
      }
    }
  }
  return out;
}

std::vector<double> Matrix::MultiplyVec(const std::vector<double>& x) const {
  ARDA_CHECK_EQ(x.size(), cols_);
  std::vector<double> out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    double sum = 0.0;
    for (size_t c = 0; c < cols_; ++c) sum += row[c] * x[c];
    out[r] = sum;
  }
  return out;
}

std::vector<double> Matrix::TransposeMultiplyVec(
    const std::vector<double>& x) const {
  ARDA_CHECK_EQ(x.size(), rows_);
  std::vector<double> out(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const double* row = RowPtr(r);
    for (size_t c = 0; c < cols_; ++c) out[c] += xr * row[c];
  }
  return out;
}

Matrix Matrix::SelectCols(const std::vector<size_t>& cols) const {
  Matrix out(rows_, cols.size());
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    double* orow = out.RowPtr(r);
    for (size_t j = 0; j < cols.size(); ++j) {
      ARDA_CHECK_LT(cols[j], cols_);
      orow[j] = row[cols[j]];
    }
  }
  return out;
}

Matrix Matrix::SelectRows(const std::vector<size_t>& rows) const {
  Matrix out(rows.size(), cols_);
  for (size_t i = 0; i < rows.size(); ++i) {
    ARDA_CHECK_LT(rows[i], rows_);
    const double* src = RowPtr(rows[i]);
    std::copy(src, src + cols_, out.RowPtr(i));
  }
  return out;
}

Matrix Matrix::HStack(const Matrix& right) const {
  if (empty()) return right;
  if (right.empty()) return *this;
  ARDA_CHECK_EQ(rows_, right.rows_);
  Matrix out(rows_, cols_ + right.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* a = RowPtr(r);
    const double* b = right.RowPtr(r);
    double* o = out.RowPtr(r);
    std::copy(a, a + cols_, o);
    std::copy(b, b + right.cols_, o + cols_);
  }
  return out;
}

Matrix Identity(size_t n) {
  Matrix out(n, n);
  for (size_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  ARDA_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double Norm2(const std::vector<double>& a) { return std::sqrt(Dot(a, a)); }

void Axpy(double scale, const std::vector<double>& b,
          std::vector<double>* a) {
  ARDA_CHECK_EQ(a->size(), b.size());
  for (size_t i = 0; i < b.size(); ++i) (*a)[i] += scale * b[i];
}

double Mean(const std::vector<double>& a) {
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (double v : a) sum += v;
  return sum / static_cast<double>(a.size());
}

double Variance(const std::vector<double>& a) {
  if (a.size() < 2) return 0.0;
  double mean = Mean(a);
  double sum = 0.0;
  for (double v : a) sum += (v - mean) * (v - mean);
  return sum / static_cast<double>(a.size());
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  ARDA_CHECK_EQ(a.size(), b.size());
  if (a.size() < 2) return 0.0;
  double ma = Mean(a);
  double mb = Mean(b);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace arda::la
