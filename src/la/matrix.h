#ifndef ARDA_LA_MATRIX_H_
#define ARDA_LA_MATRIX_H_

#include <cstddef>
#include <vector>

#include "util/check.h"

namespace arda::la {

/// Dense row-major matrix of doubles. This is the numeric workhorse behind
/// model training, sketching and RIFS; it deliberately stays small (no
/// expression templates) and favors obvious loops the compiler vectorizes.
class Matrix {
 public:
  /// Creates an empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// Creates a rows x cols matrix initialized to `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Creates a matrix from row-major `data`; data.size() must equal
  /// rows * cols.
  Matrix(size_t rows, size_t cols, std::vector<double> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    ARDA_CHECK_EQ(data_.size(), rows_ * cols_);
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& At(size_t r, size_t c) {
    ARDA_CHECK_LT(r, rows_);
    ARDA_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double At(size_t r, size_t c) const {
    ARDA_CHECK_LT(r, rows_);
    ARDA_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  /// Unchecked element access for hot loops.
  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Returns a pointer to the start of row `r`.
  double* RowPtr(size_t r) { return data_.data() + r * cols_; }
  const double* RowPtr(size_t r) const { return data_.data() + r * cols_; }

  /// Copies row `r` into a vector.
  std::vector<double> Row(size_t r) const;
  /// Copies column `c` into a vector.
  std::vector<double> Col(size_t c) const;
  /// Overwrites row `r`; `values.size()` must equal cols().
  void SetRow(size_t r, const std::vector<double>& values);
  /// Overwrites column `c`; `values.size()` must equal rows().
  void SetCol(size_t c, const std::vector<double>& values);

  /// Returns the transpose.
  Matrix Transposed() const;

  /// Matrix product this * other; inner dimensions must agree.
  Matrix Multiply(const Matrix& other) const;

  /// Matrix-vector product; `x.size()` must equal cols().
  std::vector<double> MultiplyVec(const std::vector<double>& x) const;

  /// Transposed matrix-vector product A^T x; `x.size()` must equal rows().
  std::vector<double> TransposeMultiplyVec(const std::vector<double>& x) const;

  /// Returns a new matrix containing only the listed columns, in order.
  Matrix SelectCols(const std::vector<size_t>& cols) const;

  /// Returns a new matrix containing only the listed rows, in order.
  /// Indices may repeat (bootstrap sampling).
  Matrix SelectRows(const std::vector<size_t>& rows) const;

  /// Horizontally concatenates `right` (same row count) to this matrix.
  Matrix HStack(const Matrix& right) const;

  /// Raw row-major storage.
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& mutable_data() { return data_; }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Returns the n x n identity.
Matrix Identity(size_t n);

/// Dot product; sizes must match.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm.
double Norm2(const std::vector<double>& a);

/// a += scale * b, in place; sizes must match.
void Axpy(double scale, const std::vector<double>& b, std::vector<double>* a);

/// Mean of the entries (0 for empty input).
double Mean(const std::vector<double>& a);

/// Population variance of the entries (0 for fewer than 2 entries).
double Variance(const std::vector<double>& a);

/// Pearson correlation of two equally sized vectors (0 if either is
/// constant).
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

}  // namespace arda::la

#endif  // ARDA_LA_MATRIX_H_
