#ifndef ARDA_LA_LINALG_H_
#define ARDA_LA_LINALG_H_

#include <vector>

#include "la/matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace arda::la {

/// Computes the lower-triangular Cholesky factor L of a symmetric
/// positive-definite matrix A (A = L L^T). Fails if A is not SPD within
/// numerical tolerance.
Result<Matrix> Cholesky(const Matrix& a);

/// Solves A x = b for SPD A via Cholesky factorization.
Result<std::vector<double>> SolveSpd(const Matrix& a,
                                     const std::vector<double>& b);

/// Solves L y = b (forward substitution) for lower-triangular L.
std::vector<double> ForwardSubstitute(const Matrix& l,
                                      const std::vector<double>& b);

/// Solves L^T x = y (backward substitution) for lower-triangular L.
std::vector<double> BackwardSubstitute(const Matrix& l,
                                       const std::vector<double>& y);

/// Solves the ridge-regularized least squares problem
///   min_w ||X w - y||^2 + lambda ||w||^2
/// via the normal equations (X^T X + lambda I) w = X^T y. A singular or
/// non-finite Gram matrix (rank-deficient X, NaN/inf features) is retried
/// once with a heavier diagonal; if that still fails the Status propagates
/// instead of returning NaN-poisoned weights.
Result<std::vector<double>> RidgeSolve(const Matrix& x,
                                       const std::vector<double>& y,
                                       double lambda);

/// Per-column mean/stddev statistics used to z-score a feature matrix.
struct ColumnStats {
  std::vector<double> mean;
  std::vector<double> stddev;  // entries are >= epsilon (never zero)
};

/// Computes per-column mean and stddev of `x`; stddev entries below 1e-12
/// are clamped to 1 so constant columns map to zero after standardization.
ColumnStats ComputeColumnStats(const Matrix& x);

/// Returns a copy of `x` with each column z-scored using `stats`.
Matrix Standardize(const Matrix& x, const ColumnStats& stats);

/// Covariance matrix of the *columns* of `x` treated as observations of
/// row-dimension vectors; this is the d-observation estimate RIFS uses
/// (Algorithm 2 of the paper): mu = mean over columns, Sigma =
/// 1/d sum_i (x_i - mu)(x_i - mu)^T where x_i is the i-th column.
struct FeatureMoments {
  std::vector<double> mean;  // length = rows of x
  Matrix covariance;         // rows x rows
};

/// Computes the empirical feature moments used by RIFS noise injection.
FeatureMoments ComputeFeatureMoments(const Matrix& x);

/// Samples `count` vectors from N(mu, Sigma) using a jittered Cholesky
/// factor of Sigma; each sample has mu.size() entries. Falls back to
/// diagonal sampling if Sigma is numerically singular even after jitter.
Matrix SampleMultivariateNormal(const FeatureMoments& moments, size_t count,
                                Rng* rng);

}  // namespace arda::la

#endif  // ARDA_LA_LINALG_H_
