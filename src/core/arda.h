#ifndef ARDA_CORE_ARDA_H_
#define ARDA_CORE_ARDA_H_

#include <string>
#include <vector>

#include "core/config.h"
#include "discovery/candidate.h"
#include "discovery/repository.h"
#include "ml/dataset.h"
#include "util/metrics.h"
#include "util/status.h"

namespace arda::core {

/// One candidate (or pipeline stage) the run dropped instead of crashing.
/// `stage` names where the failure happened ("ingest", "tuple_ratio",
/// "join", "pre-aggregate", "impute", "encode", "select", "accept",
/// "coreset"), `reason` carries the Status message.
struct SkippedCandidate {
  std::string table;
  std::string stage;
  std::string reason;
};

/// Input bundle for an ARDA run: the user's base table with its prediction
/// target, the data repository, and the candidate joins supplied by a data
/// discovery system (leave empty to run the built-in discovery
/// heuristics).
struct AugmentationTask {
  df::DataFrame base;
  std::string target_column;
  ml::TaskType task = ml::TaskType::kRegression;
  const discovery::DataRepository* repo = nullptr;
  std::vector<discovery::CandidateJoin> candidates;
  /// Name of the base table inside `repo` (skipped during discovery).
  std::string base_table_name = "base";
  /// Degradations that happened while loading the repository (e.g. a
  /// corrupt columnar cache file falling back to CSV). The run copies
  /// them into ArdaReport::skipped_candidates verbatim; the loader has
  /// already incremented the matching `skips.<stage>` counters.
  std::vector<SkippedCandidate> ingest_skips;
};

/// Per-batch log entry of the join plan execution.
struct BatchLog {
  std::vector<std::string> tables;
  size_t features_considered = 0;
  size_t features_kept = 0;
  /// Holdout score after deciding this batch.
  double score_after = 0.0;
  bool accepted = false;
  double join_seconds = 0.0;
  double selection_seconds = 0.0;
};

/// Everything an ARDA run produces.
struct ArdaReport {
  /// Final-estimator holdout score on the base features alone.
  double base_score = 0.0;
  /// Final-estimator holdout score on the augmented features.
  double final_score = 0.0;
  /// The augmented table: every base column plus the kept foreign
  /// columns, imputed (coreset rows).
  df::DataFrame augmented;
  /// Encoded feature names of the final selection.
  std::vector<std::string> selected_features;
  std::vector<BatchLog> batches;
  /// Candidates and stages dropped by graceful degradation: the run
  /// continued without them instead of failing (see DESIGN.md "Error
  /// handling & graceful degradation").
  std::vector<SkippedCandidate> skipped_candidates;
  size_t tables_considered = 0;
  size_t tables_joined = 0;
  size_t tables_filtered_by_tuple_ratio = 0;
  double join_seconds = 0.0;
  double selection_seconds = 0.0;
  double total_seconds = 0.0;
  /// Effective thread count the run used (resolved from
  /// ArdaConfig::num_threads; results do not depend on it).
  size_t num_threads = 1;
  /// SIMD dispatch level the run executed with ("scalar" or "avx2");
  /// results do not depend on it either (see DESIGN.md "SIMD dispatch").
  std::string simd_level;
  /// Snapshot of the process-wide metrics registry taken when the run
  /// finished (counters/gauges/histograms are cumulative across runs in
  /// the same process; see docs/observability.md). Every
  /// `skipped_candidates` entry has a matching `skips.<stage>` counter
  /// increment.
  metrics::MetricsSnapshot metrics;
  /// True when the run stopped early because ArdaConfig::interrupt_check
  /// fired at a stage boundary (e.g. the CLI caught SIGINT). The report
  /// covers only the batches decided before the interrupt; `final_score`
  /// is the score after the last decided batch and the final estimate is
  /// skipped.
  bool interrupted = false;

  /// Percent improvement of final_score over base_score, the number the
  /// paper's Figure 3 reports. Regression scores are negative MAE, so the
  /// improvement is measured as error reduction.
  double ImprovementPercent() const;
};

/// The end-to-end Automatic Relational Data Augmentation system
/// (Figure 1): coreset construction -> join plan -> batched join
/// execution with soft keys / aggregation / imputation -> feature
/// selection (RIFS by default) -> final estimate.
class Arda {
 public:
  explicit Arda(const ArdaConfig& config);

  /// Runs the full pipeline. Fails only on malformed top-level inputs
  /// (missing target, unknown selector, null repo). Per-candidate and
  /// per-batch failures — bad foreign tables, join/aggregate/impute/
  /// selection errors, injected faults — degrade gracefully: the
  /// offending candidate or stage is skipped, recorded in
  /// ArdaReport::skipped_candidates, and the run completes on whatever
  /// remains.
  Result<ArdaReport> Run(const AugmentationTask& task) const;

 private:
  ArdaConfig config_;
};

/// Groups candidates into join-plan batches under `plan`/`budget`, where
/// each candidate costs the estimated encoded feature count of its table.
/// Exposed for the table-grouping experiments (Table 5).
std::vector<std::vector<discovery::CandidateJoin>> BuildJoinPlan(
    const std::vector<discovery::CandidateJoin>& candidates,
    const discovery::DataRepository& repo, JoinPlanKind plan, size_t budget,
    const df::EncodeOptions& encode);

/// Estimated number of encoded features `table` contributes (numeric
/// columns count 1, categorical columns their capped cardinality).
size_t EstimateEncodedFeatures(const df::DataFrame& table,
                               const df::EncodeOptions& encode);

/// EstimateEncodedFeatures from the statistics catalog: categorical
/// cardinalities come from the HLL distinct estimates instead of a
/// full-column rescan. Falls back to the exact scan when `stats` does not
/// align with the frame.
size_t EstimateEncodedFeaturesFromStats(const df::DataFrame& table,
                                        const df::TableStats& stats,
                                        const df::EncodeOptions& encode);

/// Statistics form of the Tuple Ratio (Kumar et al.): base row count over
/// the estimated foreign-key-domain size, where the domain size is the
/// largest per-key-column HLL distinct estimate (a lower bound of the
/// composite domain, so the ratio is a conservative upper estimate).
/// Returns `base_rows` — the degenerate worst case — when the candidate's
/// table or key columns are missing from the repository.
double EstimateTupleRatioFromStats(
    size_t base_rows, const discovery::DataRepository& repo,
    const discovery::CandidateJoin& candidate);

/// Reorders `candidates` by ascending estimated Tuple Ratio — joins with
/// dense foreign-key domains (low expected output duplication, high
/// information) first — keeping the incoming (discovery-score) order on
/// ties. The statistics are read from the repository catalog; candidates
/// whose statistics are unavailable sort by the degenerate worst-case
/// ratio.
void OrderCandidatesByEstimatedCost(
    std::vector<discovery::CandidateJoin>* candidates,
    const discovery::DataRepository& repo, size_t base_rows);

/// Encodes `frame` into a supervised dataset: the target column becomes
/// `y` (string classification targets are mapped to dense label ids in
/// sorted value order) and every other column is encoded per `encode`.
/// Fails if the target is missing, or non-numeric for regression.
Result<ml::Dataset> BuildDataset(const df::DataFrame& frame,
                                 const std::string& target_column,
                                 ml::TaskType task,
                                 const df::EncodeOptions& encode = {});

}  // namespace arda::core

#endif  // ARDA_CORE_ARDA_H_
