#ifndef ARDA_CORE_REPORT_IO_H_
#define ARDA_CORE_REPORT_IO_H_

#include <string>

#include "core/arda.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace arda::core {

/// Serializes an ArdaReport as a JSON object (scores, timings, per-batch
/// log, selected feature names, augmented-table schema and the `metrics`
/// snapshot — not the data itself). Stable key names; intended for
/// dashboards and the CLI's --report-json flag.
std::string ReportToJson(const ArdaReport& report);

/// Serializes only the deterministic subset of an ArdaReport: the fields
/// that are pure functions of (input data, ArdaConfig minus execution
/// knobs). Wall-clock timings, the cumulative metrics snapshot, and the
/// execution-environment fields (`num_threads`, `simd_level`) are
/// excluded — by the determinism contract they never influence results,
/// so two runs of the same request agree on these bytes across thread
/// counts, SIMD levels, processes and machines. This is the payload the
/// augmentation service returns and the byte-identity the service tests,
/// bench `--assert-identical` mode and the CLI's --canonical-report flag
/// compare.
std::string DeterministicReportJson(const ArdaReport& report);

/// Writes ReportToJson(report) to `path`.
Status WriteReportJson(const ArdaReport& report, const std::string& path);

/// Serializes a metrics snapshot as a JSON object with `counters` and
/// `gauges` name→value maps plus a `histograms` array (bucket upper
/// bounds use "+Inf" for the overflow bucket, Prometheus-style).
std::string MetricsToJson(const metrics::MetricsSnapshot& snapshot,
                          const std::string& indent = "  ");

/// Escapes a string for embedding in JSON (quotes, backslashes, control
/// characters). Delegates to the shared arda::JsonEscape helper that
/// every JSON emitter in the repo must use.
inline std::string JsonEscape(const std::string& text) {
  return ::arda::JsonEscape(text);
}

}  // namespace arda::core

#endif  // ARDA_CORE_REPORT_IO_H_
