#ifndef ARDA_CORE_REPORT_IO_H_
#define ARDA_CORE_REPORT_IO_H_

#include <string>

#include "core/arda.h"

namespace arda::core {

/// Serializes an ArdaReport as a JSON object (scores, timings, per-batch
/// log, selected feature names and augmented-table schema — not the data
/// itself). Stable key names; intended for dashboards and the CLI's
/// --report-json flag.
std::string ReportToJson(const ArdaReport& report);

/// Writes ReportToJson(report) to `path`.
Status WriteReportJson(const ArdaReport& report, const std::string& path);

/// Escapes a string for embedding in JSON (quotes, backslashes, control
/// characters).
std::string JsonEscape(const std::string& text);

}  // namespace arda::core

#endif  // ARDA_CORE_REPORT_IO_H_
