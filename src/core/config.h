#ifndef ARDA_CORE_CONFIG_H_
#define ARDA_CORE_CONFIG_H_

#include <functional>
#include <string>

#include "coreset/coreset.h"
#include "dataframe/encode.h"
#include "featsel/rifs.h"
#include "join/join_executor.h"

namespace arda::core {

/// Table-grouping strategy for the join plan (Section 4 "Table grouping").
enum class JoinPlanKind {
  /// One candidate table per batch — cheap per step but misses
  /// co-predicting features split across tables.
  kTableAtATime,
  /// As many tables per batch as fit in the feature budget (ARDA's
  /// default).
  kBudget,
  /// Every candidate table in a single batch before feature selection.
  kFullMaterialization,
};

/// Returns "table", "budget" or "full".
const char* JoinPlanKindName(JoinPlanKind kind);

/// End-to-end configuration of an ARDA run.
struct ArdaConfig {
  coreset::CoresetConfig coreset;
  JoinPlanKind plan = JoinPlanKind::kBudget;
  /// Max encoded features considered per batch; 0 = the coreset row count
  /// (the paper's default). A single table larger than the budget still
  /// gets its own batch.
  size_t budget = 0;
  join::JoinOptions join;
  df::EncodeOptions encode;
  /// Feature-selection method name (featsel::MakeSelector registry);
  /// "rifs" (default) uses the `rifs` config below.
  std::string selector = "rifs";
  featsel::RifsConfig rifs;
  /// Holdout fraction used by the internal evaluator.
  double test_fraction = 0.25;
  /// Apply the Kumar et al. Tuple-Ratio rule to drop candidate tables
  /// before any joins (Table 4 experiment).
  bool use_tuple_ratio_prefilter = false;
  double tuple_ratio_tau = 20.0;
  /// Order candidate joins by estimated output cardinality from the
  /// repository's statistics catalog (ascending statistical Tuple Ratio)
  /// before batching, so information-dense tables are joined and
  /// evaluated first. Off = keep the discovery score order.
  bool cost_based_ordering = true;
  /// A batch's new features are kept only if they improve the holdout
  /// score by more than this margin.
  double min_improvement = 0.0;
  uint64_t seed = 42;
  /// Threads used by the pipeline's parallel regions (candidate join
  /// execution, RIFS rounds, forest training): 0 = hardware concurrency,
  /// 1 = serial. Every region takes pre-forked RNG sub-streams and
  /// reduces in deterministic order, so results are bit-identical for
  /// every value (see DESIGN.md "Parallelism & determinism contract").
  size_t num_threads = 0;
  /// Optional cooperative-cancellation probe, polled at stage boundaries
  /// (between join-plan batches and before the final estimate). When it
  /// returns true the run stops early, keeps everything decided so far
  /// and marks the report `interrupted` instead of failing. The CLI wires
  /// this to the process signal flag; the augmentation service leaves it
  /// unset so admitted requests always run to completion during graceful
  /// shutdown. Never influences results while it returns false.
  std::function<bool()> interrupt_check;
};

}  // namespace arda::core

#endif  // ARDA_CORE_CONFIG_H_
