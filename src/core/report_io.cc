#include "core/report_io.h"

#include <fstream>

#include "util/string_util.h"

namespace arda::core {

namespace {

std::string JsonStringArray(const std::vector<std::string>& values) {
  std::string out = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + JsonEscape(values[i]) + "\"";
  }
  out += "]";
  return out;
}

}  // namespace

std::string MetricsToJson(const metrics::MetricsSnapshot& snapshot,
                          const std::string& indent) {
  const std::string in1 = indent + "  ";
  const std::string in2 = indent + "    ";
  std::string out = "{\n";

  out += in1 + "\"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    const metrics::CounterSnapshot& c = snapshot.counters[i];
    if (i > 0) out += ",";
    out += "\n" + in2 + "\"" + JsonEscape(c.name) + "\": " +
           StrFormat("%llu", static_cast<unsigned long long>(c.value));
  }
  out += snapshot.counters.empty() ? "},\n" : "\n" + in1 + "},\n";

  out += in1 + "\"gauges\": {";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const metrics::GaugeSnapshot& g = snapshot.gauges[i];
    if (i > 0) out += ",";
    out += "\n" + in2 + "\"" + JsonEscape(g.name) + "\": " +
           StrFormat("%.10g", g.value);
  }
  out += snapshot.gauges.empty() ? "},\n" : "\n" + in1 + "},\n";

  out += in1 + "\"histograms\": [";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const metrics::HistogramSnapshot& h = snapshot.histograms[i];
    if (i > 0) out += ",";
    out += "\n" + in2 + "{\"name\": \"" + JsonEscape(h.name) + "\", ";
    out += StrFormat("\"count\": %llu, ",
                     static_cast<unsigned long long>(h.count));
    out += StrFormat("\"sum\": %.10g, \"min\": %.10g, \"max\": %.10g, ",
                     h.sum, h.min, h.max);
    out += "\"buckets\": [";
    for (size_t b = 0; b < h.bucket_counts.size(); ++b) {
      if (b > 0) out += ", ";
      // Shared with the Prometheus exposition: both surfaces must render
      // identical le edges (metrics::BucketBoundLabel). Finite bounds are
      // JSON numbers; the overflow label "+Inf" needs quoting.
      std::string le = metrics::BucketBoundLabel(h.bounds, b);
      if (b >= h.bounds.size()) le = "\"" + le + "\"";
      out += StrFormat(
          "{\"le\": %s, \"count\": %llu}", le.c_str(),
          static_cast<unsigned long long>(h.bucket_counts[b]));
    }
    out += "]}";
  }
  out += snapshot.histograms.empty() ? "]\n" : "\n" + in1 + "]\n";
  out += indent + "}";
  return out;
}

std::string ReportToJson(const ArdaReport& report) {
  std::string out = "{\n";
  out += StrFormat("  \"base_score\": %.10g,\n", report.base_score);
  out += StrFormat("  \"final_score\": %.10g,\n", report.final_score);
  out += StrFormat("  \"improvement_percent\": %.6g,\n",
                   report.ImprovementPercent());
  out += StrFormat("  \"interrupted\": %s,\n",
                   report.interrupted ? "true" : "false");
  out += StrFormat("  \"tables_considered\": %zu,\n",
                   report.tables_considered);
  out += StrFormat("  \"tables_joined\": %zu,\n", report.tables_joined);
  out += StrFormat("  \"tables_filtered_by_tuple_ratio\": %zu,\n",
                   report.tables_filtered_by_tuple_ratio);
  out += StrFormat("  \"join_seconds\": %.6g,\n", report.join_seconds);
  out += StrFormat("  \"selection_seconds\": %.6g,\n",
                   report.selection_seconds);
  out += StrFormat("  \"total_seconds\": %.6g,\n", report.total_seconds);
  out += StrFormat("  \"num_threads\": %zu,\n", report.num_threads);
  out += "  \"simd_level\": \"" + JsonEscape(report.simd_level) + "\",\n";
  out += StrFormat("  \"augmented_rows\": %zu,\n",
                   report.augmented.NumRows());
  out += "  \"augmented_columns\": " +
         JsonStringArray(report.augmented.ColumnNames()) + ",\n";
  out += "  \"selected_features\": " +
         JsonStringArray(report.selected_features) + ",\n";
  out += "  \"batches\": [\n";
  for (size_t i = 0; i < report.batches.size(); ++i) {
    const BatchLog& batch = report.batches[i];
    out += "    {";
    out += "\"tables\": " + JsonStringArray(batch.tables) + ", ";
    out += StrFormat("\"features_considered\": %zu, ",
                     batch.features_considered);
    out += StrFormat("\"features_kept\": %zu, ", batch.features_kept);
    out += StrFormat("\"accepted\": %s, ",
                     batch.accepted ? "true" : "false");
    out += StrFormat("\"score_after\": %.10g, ", batch.score_after);
    out += StrFormat("\"join_seconds\": %.6g, ", batch.join_seconds);
    out += StrFormat("\"selection_seconds\": %.6g}",
                     batch.selection_seconds);
    out += i + 1 < report.batches.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  out += "  \"skipped_candidates\": [\n";
  for (size_t i = 0; i < report.skipped_candidates.size(); ++i) {
    const SkippedCandidate& skip = report.skipped_candidates[i];
    out += "    {";
    out += "\"table\": \"" + JsonEscape(skip.table) + "\", ";
    out += "\"stage\": \"" + JsonEscape(skip.stage) + "\", ";
    out += "\"reason\": \"" + JsonEscape(skip.reason) + "\"}";
    out += i + 1 < report.skipped_candidates.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  out += "  \"metrics\": " + MetricsToJson(report.metrics) + "\n}\n";
  return out;
}

std::string DeterministicReportJson(const ArdaReport& report) {
  // Deliberately omits every field that can differ between two runs of
  // the same request: timings, the metrics snapshot, num_threads and
  // simd_level. Keys stay sorted and the number formats match
  // ReportToJson so values are directly comparable between the two.
  std::string out = "{\n";
  out += "  \"augmented_columns\": " +
         JsonStringArray(report.augmented.ColumnNames()) + ",\n";
  out += StrFormat("  \"augmented_rows\": %zu,\n",
                   report.augmented.NumRows());
  out += StrFormat("  \"base_score\": %.10g,\n", report.base_score);
  out += "  \"batches\": [\n";
  for (size_t i = 0; i < report.batches.size(); ++i) {
    const BatchLog& batch = report.batches[i];
    out += "    {";
    out += StrFormat("\"accepted\": %s, ",
                     batch.accepted ? "true" : "false");
    out += StrFormat("\"features_considered\": %zu, ",
                     batch.features_considered);
    out += StrFormat("\"features_kept\": %zu, ", batch.features_kept);
    out += StrFormat("\"score_after\": %.10g, ", batch.score_after);
    out += "\"tables\": " + JsonStringArray(batch.tables) + "}";
    out += i + 1 < report.batches.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  out += StrFormat("  \"final_score\": %.10g,\n", report.final_score);
  out += StrFormat("  \"improvement_percent\": %.6g,\n",
                   report.ImprovementPercent());
  out += StrFormat("  \"interrupted\": %s,\n",
                   report.interrupted ? "true" : "false");
  out += "  \"selected_features\": " +
         JsonStringArray(report.selected_features) + ",\n";
  out += "  \"skipped_candidates\": [\n";
  for (size_t i = 0; i < report.skipped_candidates.size(); ++i) {
    const SkippedCandidate& skip = report.skipped_candidates[i];
    out += "    {";
    out += "\"reason\": \"" + JsonEscape(skip.reason) + "\", ";
    out += "\"stage\": \"" + JsonEscape(skip.stage) + "\", ";
    out += "\"table\": \"" + JsonEscape(skip.table) + "\"}";
    out += i + 1 < report.skipped_candidates.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  out += StrFormat("  \"tables_considered\": %zu,\n",
                   report.tables_considered);
  out += StrFormat("  \"tables_filtered_by_tuple_ratio\": %zu,\n",
                   report.tables_filtered_by_tuple_ratio);
  out += StrFormat("  \"tables_joined\": %zu\n", report.tables_joined);
  out += "}\n";
  return out;
}

Status WriteReportJson(const ArdaReport& report, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open file for writing: " + path);
  }
  out << ReportToJson(report);
  if (!out) {
    return Status::IoError("failed writing file: " + path);
  }
  return Status::Ok();
}

}  // namespace arda::core
