#include "core/report_io.h"

#include <fstream>

#include "util/string_util.h"

namespace arda::core {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string JsonStringArray(const std::vector<std::string>& values) {
  std::string out = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + JsonEscape(values[i]) + "\"";
  }
  out += "]";
  return out;
}

}  // namespace

std::string ReportToJson(const ArdaReport& report) {
  std::string out = "{\n";
  out += StrFormat("  \"base_score\": %.10g,\n", report.base_score);
  out += StrFormat("  \"final_score\": %.10g,\n", report.final_score);
  out += StrFormat("  \"improvement_percent\": %.6g,\n",
                   report.ImprovementPercent());
  out += StrFormat("  \"tables_considered\": %zu,\n",
                   report.tables_considered);
  out += StrFormat("  \"tables_joined\": %zu,\n", report.tables_joined);
  out += StrFormat("  \"tables_filtered_by_tuple_ratio\": %zu,\n",
                   report.tables_filtered_by_tuple_ratio);
  out += StrFormat("  \"join_seconds\": %.6g,\n", report.join_seconds);
  out += StrFormat("  \"selection_seconds\": %.6g,\n",
                   report.selection_seconds);
  out += StrFormat("  \"total_seconds\": %.6g,\n", report.total_seconds);
  out += StrFormat("  \"num_threads\": %zu,\n", report.num_threads);
  out += StrFormat("  \"augmented_rows\": %zu,\n",
                   report.augmented.NumRows());
  out += "  \"augmented_columns\": " +
         JsonStringArray(report.augmented.ColumnNames()) + ",\n";
  out += "  \"selected_features\": " +
         JsonStringArray(report.selected_features) + ",\n";
  out += "  \"batches\": [\n";
  for (size_t i = 0; i < report.batches.size(); ++i) {
    const BatchLog& batch = report.batches[i];
    out += "    {";
    out += "\"tables\": " + JsonStringArray(batch.tables) + ", ";
    out += StrFormat("\"features_considered\": %zu, ",
                     batch.features_considered);
    out += StrFormat("\"features_kept\": %zu, ", batch.features_kept);
    out += StrFormat("\"accepted\": %s, ",
                     batch.accepted ? "true" : "false");
    out += StrFormat("\"score_after\": %.10g, ", batch.score_after);
    out += StrFormat("\"join_seconds\": %.6g, ", batch.join_seconds);
    out += StrFormat("\"selection_seconds\": %.6g}",
                     batch.selection_seconds);
    out += i + 1 < report.batches.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  out += "  \"skipped_candidates\": [\n";
  for (size_t i = 0; i < report.skipped_candidates.size(); ++i) {
    const SkippedCandidate& skip = report.skipped_candidates[i];
    out += "    {";
    out += "\"table\": \"" + JsonEscape(skip.table) + "\", ";
    out += "\"stage\": \"" + JsonEscape(skip.stage) + "\", ";
    out += "\"reason\": \"" + JsonEscape(skip.reason) + "\"}";
    out += i + 1 < report.skipped_candidates.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

Status WriteReportJson(const ArdaReport& report, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open file for writing: " + path);
  }
  out << ReportToJson(report);
  if (!out) {
    return Status::IoError("failed writing file: " + path);
  }
  return Status::Ok();
}

}  // namespace arda::core
