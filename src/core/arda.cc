#include "core/arda.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include <memory>

#include "discovery/discovery.h"
#include "discovery/tuple_ratio.h"
#include "featsel/selector.h"
#include "join/impute.h"
#include "simd/simd.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/trace.h"

namespace arda::core {

const char* JoinPlanKindName(JoinPlanKind kind) {
  switch (kind) {
    case JoinPlanKind::kTableAtATime:
      return "table";
    case JoinPlanKind::kBudget:
      return "budget";
    case JoinPlanKind::kFullMaterialization:
      return "full";
  }
  return "unknown";
}

double ArdaReport::ImprovementPercent() const {
  if (std::fabs(base_score) < 1e-12) {
    return (final_score - base_score) * 100.0;
  }
  // Scores are higher-is-better (accuracy, or negative MAE); normalize by
  // the magnitude of the base score so regression reads as % error
  // reduction and classification as % accuracy gain.
  return (final_score - base_score) / std::fabs(base_score) * 100.0;
}

size_t EstimateEncodedFeatures(const df::DataFrame& table,
                               const df::EncodeOptions& encode) {
  size_t count = 0;
  for (size_t c = 0; c < table.NumCols(); ++c) {
    const df::Column& col = table.col(c);
    if (col.IsNumeric()) {
      ++count;
    } else {
      count += std::min(col.DistinctValuesAsString().size(),
                        encode.max_categories);
    }
  }
  return count;
}

size_t EstimateEncodedFeaturesFromStats(const df::DataFrame& table,
                                        const df::TableStats& stats,
                                        const df::EncodeOptions& encode) {
  if (stats.columns.size() != table.NumCols()) {
    return EstimateEncodedFeatures(table, encode);
  }
  size_t count = 0;
  for (size_t c = 0; c < table.NumCols(); ++c) {
    if (table.col(c).IsNumeric()) {
      ++count;
    } else {
      const double ndv = stats.columns[c].DistinctEstimate();
      count += std::min(
          static_cast<size_t>(std::llround(std::max(0.0, ndv))),
          encode.max_categories);
    }
  }
  return count;
}

double EstimateTupleRatioFromStats(
    size_t base_rows, const discovery::DataRepository& repo,
    const discovery::CandidateJoin& candidate) {
  const double ns = static_cast<double>(base_rows);
  Result<const df::DataFrame*> foreign = repo.Get(candidate.foreign_table);
  if (!foreign.ok() || candidate.keys.empty()) return ns;
  const df::TableStats* stats = repo.Stats(candidate.foreign_table);
  if (stats == nullptr ||
      stats->columns.size() != foreign.value()->NumCols()) {
    return ns;
  }
  double domain = 0.0;
  for (const discovery::JoinKeyPair& key : candidate.keys) {
    if (!foreign.value()->HasColumn(key.foreign_column)) return ns;
    const size_t index = foreign.value()->ColumnIndex(key.foreign_column);
    domain = std::max(domain, stats->columns[index].DistinctEstimate());
  }
  if (domain < 1.0) return ns;
  return ns / domain;
}

void OrderCandidatesByEstimatedCost(
    std::vector<discovery::CandidateJoin>* candidates,
    const discovery::DataRepository& repo, size_t base_rows) {
  std::vector<double> ratios;
  ratios.reserve(candidates->size());
  for (const discovery::CandidateJoin& candidate : *candidates) {
    ratios.push_back(
        EstimateTupleRatioFromStats(base_rows, repo, candidate));
  }
  std::vector<size_t> order(candidates->size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return ratios[a] < ratios[b]; });
  std::vector<discovery::CandidateJoin> reordered;
  reordered.reserve(candidates->size());
  for (size_t i : order) reordered.push_back(std::move((*candidates)[i]));
  *candidates = std::move(reordered);
}

std::vector<std::vector<discovery::CandidateJoin>> BuildJoinPlan(
    const std::vector<discovery::CandidateJoin>& candidates,
    const discovery::DataRepository& repo, JoinPlanKind plan, size_t budget,
    const df::EncodeOptions& encode) {
  std::vector<std::vector<discovery::CandidateJoin>> batches;
  if (candidates.empty()) return batches;
  if (plan == JoinPlanKind::kFullMaterialization) {
    batches.push_back(candidates);
    return batches;
  }
  if (plan == JoinPlanKind::kTableAtATime) {
    for (const discovery::CandidateJoin& cand : candidates) {
      batches.push_back({cand});
    }
    return batches;
  }
  // Budget batching: pack candidates (already in priority order) until
  // the estimated feature count would exceed the budget. A single table
  // above the budget still ships alone (the paper's exception).
  std::vector<discovery::CandidateJoin> current;
  size_t current_cost = 0;
  for (const discovery::CandidateJoin& cand : candidates) {
    size_t cost = 1;
    if (repo.Has(cand.foreign_table)) {
      const df::DataFrame& table = repo.GetOrDie(cand.foreign_table);
      // Costing from the memoized statistics catalog avoids re-scanning
      // categorical columns on every plan; the catalog is usually already
      // warm from discovery or the ingest cache.
      const df::TableStats* stats = repo.Stats(cand.foreign_table);
      cost = stats != nullptr
                 ? EstimateEncodedFeaturesFromStats(table, *stats, encode)
                 : EstimateEncodedFeatures(table, encode);
    }
    if (!current.empty() && budget > 0 && current_cost + cost > budget) {
      batches.push_back(std::move(current));
      current.clear();
      current_cost = 0;
    }
    current.push_back(cand);
    current_cost += cost;
  }
  if (!current.empty()) batches.push_back(std::move(current));
  return batches;
}

Result<ml::Dataset> BuildDataset(const df::DataFrame& frame,
                                 const std::string& target_column,
                                 ml::TaskType task,
                                 const df::EncodeOptions& encode) {
  if (!frame.HasColumn(target_column)) {
    return Status::NotFound("no such target column: " + target_column);
  }
  const df::Column& target = frame.col(target_column);
  ml::Dataset data;
  data.task = task;
  data.y.reserve(frame.NumRows());
  if (target.IsNumeric()) {
    for (size_t r = 0; r < frame.NumRows(); ++r) {
      if (target.IsNull(r)) {
        return Status::InvalidArgument("target column contains nulls");
      }
      double v = target.NumericAt(r);
      if (task == ml::TaskType::kClassification) {
        v = std::lround(v);
        if (v < 0) {
          return Status::InvalidArgument(
              "classification labels must be non-negative");
        }
      }
      data.y.push_back(v);
    }
  } else {
    if (task == ml::TaskType::kRegression) {
      return Status::InvalidArgument(
          "regression target must be numeric: " + target_column);
    }
    std::vector<std::string> values = target.DistinctValuesAsString();
    std::map<std::string, double> ids;
    for (size_t i = 0; i < values.size(); ++i) {
      ids[values[i]] = static_cast<double>(i);
    }
    for (size_t r = 0; r < frame.NumRows(); ++r) {
      if (target.IsNull(r)) {
        return Status::InvalidArgument("target column contains nulls");
      }
      data.y.push_back(ids[target.StringAt(r)]);
    }
  }
  df::EncodedFeatures encoded =
      df::EncodeFeatures(frame, {target_column}, encode);
  data.x = std::move(encoded.x);
  data.feature_names = std::move(encoded.names);
  return data;
}

namespace {

// Comma-joined table list for skip records covering a whole batch.
std::string JoinedTableList(const std::vector<std::string>& tables) {
  std::string out;
  for (const std::string& table : tables) {
    if (!out.empty()) out += ",";
    out += table;
  }
  return out.empty() ? "<base>" : out;
}

// Selected encoded feature indices -> owning source columns of `frame`.
std::set<std::string> SourceColumnsOf(const df::DataFrame& frame,
                                      const df::EncodedFeatures& encoded,
                                      const std::vector<size_t>& features) {
  std::set<std::string> columns;
  for (size_t f : features) {
    columns.insert(frame.col(encoded.source_column[f]).name());
  }
  return columns;
}

// Records a graceful-degradation skip in the report AND in the metrics
// registry (`skips.<stage>` counter) so observability consumers see the
// same list the report carries (asserted by fault_injection_test).
void RecordSkip(ArdaReport* report, std::string table, const char* stage,
                std::string reason) {
  metrics::IncrementCounter(std::string("skips.") + stage);
  report->skipped_candidates.push_back(
      {std::move(table), stage, std::move(reason)});
}

}  // namespace

Arda::Arda(const ArdaConfig& config) : config_(config) {}

Result<ArdaReport> Arda::Run(const AugmentationTask& task) const {
  Stopwatch total_watch;
  if (task.repo == nullptr) {
    return Status::InvalidArgument("task.repo must be set");
  }
  if (!task.base.HasColumn(task.target_column)) {
    return Status::NotFound("no such target column: " + task.target_column);
  }
  trace::StageScope run_scope("arda.run", "base=" + task.base_table_name);
  metrics::IncrementCounter("pipeline.runs_total");
  Rng rng(config_.seed);

  ArdaReport report;
  // Ingest-time degradations (columnar-cache fallbacks) happened before
  // the run; the loader already incremented their skips.ingest counters,
  // so they are copied into the report without re-counting.
  report.skipped_candidates = task.ingest_skips;

  // 1. Coreset construction on the base table. A failed sample degrades
  // to running on the full base table.
  df::DataFrame coreset_base;
  {
    trace::StageScope scope("coreset");
    Result<df::DataFrame> sampled =
        coreset::SampleCoreset(task.base, task.target_column, task.task,
                               config_.coreset, &rng);
    if (sampled.ok()) {
      coreset_base = std::move(sampled).value();
    } else {
      RecordSkip(&report, task.base_table_name, "coreset",
                 sampled.status().message());
      coreset_base = task.base;
    }
    metrics::ObserveSize("coreset.rows", coreset_base.NumRows());
  }

  // 2. Candidate joins: provided, or discovered in the repository.
  std::vector<discovery::CandidateJoin> candidates = task.candidates;
  if (candidates.empty()) {
    trace::StageScope scope("discovery");
    candidates = discovery::DiscoverCandidates(
        *task.repo, task.base_table_name, task.target_column);
  }
  metrics::IncrementCounter("discovery.candidates_total",
                            candidates.size());

  report.tables_considered = candidates.size();

  // Optional Tuple-Ratio prefilter (Kumar et al. decision rule).
  if (config_.use_tuple_ratio_prefilter) {
    trace::StageScope scope("tuple_ratio");
    discovery::TupleRatioFilterResult filtered =
        discovery::FilterByTupleRatio(*task.repo, coreset_base, candidates,
                                      config_.tuple_ratio_tau);
    report.tables_filtered_by_tuple_ratio = filtered.removed.size();
    metrics::IncrementCounter("discovery.tuple_ratio_filtered_total",
                              filtered.removed.size());
    // Broken references (missing tables / key columns) are degradations,
    // not legitimate "too large" decisions — surface them as skips.
    for (const discovery::RemovedCandidate& removed : filtered.removed) {
      if (removed.broken_reference) {
        RecordSkip(&report, removed.candidate.foreign_table, "tuple_ratio",
                   removed.reason);
      }
    }
    candidates = std::move(filtered.kept);
  }

  // Cost-based ordering from the statistics catalog: join the candidates
  // with the densest foreign-key domains first, so the budget batcher
  // packs high-information tables into the earliest batches.
  if (config_.cost_based_ordering && !candidates.empty()) {
    trace::StageScope scope("cost_order");
    OrderCandidatesByEstimatedCost(&candidates, *task.repo,
                                   coreset_base.NumRows());
  }

  // 3. Join plan.
  size_t budget = config_.budget == 0 ? coreset_base.NumRows()
                                      : config_.budget;
  std::vector<std::vector<discovery::CandidateJoin>> batches;
  {
    trace::StageScope scope("join_plan");
    batches = BuildJoinPlan(candidates, *task.repo, config_.plan, budget,
                            config_.encode);
    metrics::SetGauge("join_plan.batches", batches.size());
  }

  featsel::RifsConfig rifs_config = config_.rifs;
  if (rifs_config.num_threads == 0) {
    rifs_config.num_threads = config_.num_threads;
  }
  std::unique_ptr<featsel::FeatureSelector> selector =
      config_.selector == "rifs"
          ? featsel::MakeRifsSelector(rifs_config)
          : featsel::MakeSelector(config_.selector);
  if (selector == nullptr) {
    return Status::InvalidArgument("unknown selector: " + config_.selector);
  }

  // `current` always holds the accepted augmentation so far (starts as
  // the base coreset) with nulls imputed. A failed imputation degrades to
  // the unimputed frame: EncodeFeatures fills numeric nulls on its own.
  df::DataFrame current = coreset_base;
  {
    trace::StageScope scope("impute");
    Status imputed = join::ImputeInPlace(&current, &rng);
    if (!imputed.ok()) {
      RecordSkip(&report, task.base_table_name, "impute",
                 imputed.message());
    }
  }

  ARDA_ASSIGN_OR_RETURN(ml::Dataset current_data,
                        BuildDataset(current, task.target_column, task.task,
                                     config_.encode));
  ml::Evaluator base_evaluator(current_data, config_.test_fraction,
                               config_.seed);
  double current_score = base_evaluator.ScoreAllFeatures();

  report.num_threads = ResolveNumThreads(config_.num_threads);
  report.simd_level = simd::DispatchSummary();

  // 4. Batched join execution + feature selection. The interrupt probe is
  // polled only at batch boundaries (and before the final estimate): a
  // batch in flight always finishes, so an interrupted report is a valid
  // prefix of the uninterrupted run, not a torn batch.
  auto interrupted_now = [this] {
    return config_.interrupt_check && config_.interrupt_check();
  };
  size_t batch_index = 0;
  for (const std::vector<discovery::CandidateJoin>& batch : batches) {
    if (interrupted_now()) {
      report.interrupted = true;
      break;
    }
    trace::TraceSpan batch_span(
        "batch", "pipeline",
        StrFormat("batch %zu: %zu candidate(s)", batch_index++,
                  batch.size()));
    BatchLog log;
    Stopwatch join_watch;
    // Candidate joins are independent: ExecuteLeftJoin keeps every base
    // row exactly once and the join keys live in the batch-start frame,
    // so each candidate joins against `current` concurrently. Each join
    // gets an RNG sub-stream forked serially in candidate order, and the
    // new columns are merged in candidate order (collision renaming is
    // order-defined) — results are bit-identical for any thread count.
    std::vector<Rng> join_rngs;
    join_rngs.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) join_rngs.push_back(rng.Fork());
    std::vector<std::unique_ptr<df::DataFrame>> joined(batch.size());
    // Each worker writes only its own slot of join_errors/joined, so the
    // error capture needs no locking; skips are recorded after the join
    // barrier, on the calling thread, in candidate order.
    std::vector<Status> join_errors(batch.size());
    ParallelFor(batch.size(), config_.num_threads, [&](size_t i) {
      trace::StageScope scope("join", batch[i].foreign_table);
      Result<const df::DataFrame*> foreign =
          task.repo->Get(batch[i].foreign_table);
      if (!foreign.ok()) {
        join_errors[i] = foreign.status();
        return;
      }
      Result<df::DataFrame> result = join::ExecuteLeftJoin(
          current, *foreign.value(), batch[i], config_.join, &join_rngs[i]);
      if (!result.ok()) {  // skip malformed candidates
        join_errors[i] = result.status();
        return;
      }
      joined[i] =
          std::make_unique<df::DataFrame>(std::move(result).value());
    });

    df::DataFrame working = current;
    bool joined_any = false;
    for (size_t i = 0; i < batch.size(); ++i) {
      if (joined[i] == nullptr) {
        RecordSkip(&report, batch[i].foreign_table, "join",
                   join_errors[i].message());
        continue;
      }
      df::DataFrame new_cols;
      for (size_t c = current.NumCols(); c < joined[i]->NumCols(); ++c) {
        Status st = new_cols.AddColumn(joined[i]->col(c));
        ARDA_CHECK(st.ok());
      }
      std::string prefix = config_.join.column_prefix.empty()
                               ? batch[i].foreign_table + "."
                               : config_.join.column_prefix;
      Status stacked = working.HStack(new_cols, prefix);
      if (!stacked.ok()) {
        RecordSkip(&report, batch[i].foreign_table, "merge",
                   stacked.message());
        continue;
      }
      log.tables.push_back(batch[i].foreign_table);
      joined_any = true;
    }
    metrics::IncrementCounter("join.candidates_joined_total",
                              log.tables.size());
    log.join_seconds = join_watch.ElapsedSeconds();
    report.join_seconds += log.join_seconds;
    if (!joined_any) {
      report.batches.push_back(std::move(log));
      continue;
    }
    {
      trace::StageScope scope("impute");
      Status imputed = join::ImputeInPlace(&working, &rng);
      if (!imputed.ok()) {
        // Degrade to the unimputed frame; encoding fills numeric nulls.
        RecordSkip(&report, JoinedTableList(log.tables), "impute",
                   imputed.message());
      }
    }

    Stopwatch select_watch;
    Result<ml::Dataset> working_result = [&] {
      trace::StageScope scope("encode");
      return BuildDataset(working, task.target_column, task.task,
                          config_.encode);
    }();
    if (!working_result.ok()) {
      RecordSkip(&report, JoinedTableList(log.tables), "encode",
                 working_result.status().message());
      log.score_after = current_score;
      report.batches.push_back(std::move(log));
      continue;
    }
    ml::Dataset working_data = std::move(working_result).value();
    // Optional sketch coreset of the selection data (post-join only).
    ml::Dataset selection_data = working_data;
    if (config_.coreset.method == coreset::CoresetMethod::kSketch) {
      size_t rows = config_.coreset.size == 0
                        ? coreset::HeuristicCoresetSize(
                              working_data.NumRows())
                        : config_.coreset.size;
      selection_data = coreset::SketchRows(working_data, rows, &rng);
    }
    ml::Evaluator evaluator(selection_data, config_.test_fraction,
                            config_.seed);
    Rng selector_rng = rng.Fork();
    Result<featsel::SelectionResult> selected = [&] {
      trace::StageScope scope(
          "select", StrFormat("%zu features",
                              selection_data.NumFeatures()));
      return selector->TrySelect(selection_data, evaluator, &selector_rng);
    }();
    if (!selected.ok()) {
      RecordSkip(&report, JoinedTableList(log.tables), "select",
                 selected.status().message());
      log.selection_seconds = select_watch.ElapsedSeconds();
      report.selection_seconds += log.selection_seconds;
      log.score_after = current_score;
      report.batches.push_back(std::move(log));
      continue;
    }
    featsel::SelectionResult selection = std::move(selected).value();
    log.selection_seconds = select_watch.ElapsedSeconds();
    report.selection_seconds += log.selection_seconds;

    // Which *new* source columns did the selection keep?
    df::EncodedFeatures encoded =
        df::EncodeFeatures(working, {task.target_column}, config_.encode);
    std::set<std::string> kept_columns =
        SourceColumnsOf(working, encoded, selection.selected);
    std::vector<std::string> new_columns;
    for (const std::string& name : kept_columns) {
      if (!current.HasColumn(name)) new_columns.push_back(name);
    }
    log.features_considered = working_data.NumFeatures();
    log.features_kept = new_columns.size();

    if (!new_columns.empty()) {
      // Accept the batch only if the kept columns actually improve the
      // holdout score over the current augmentation.
      trace::StageScope scope("accept");
      df::DataFrame candidate_frame = current;
      for (const std::string& name : new_columns) {
        Status st = candidate_frame.AddColumn(working.col(name));
        ARDA_CHECK(st.ok());
      }
      Result<ml::Dataset> candidate_result =
          BuildDataset(candidate_frame, task.target_column, task.task,
                       config_.encode);
      if (!candidate_result.ok()) {
        // Reject the batch instead of failing the run.
        RecordSkip(&report, JoinedTableList(log.tables), "accept",
                   candidate_result.status().message());
      } else {
        ml::Dataset candidate_data = std::move(candidate_result).value();
        ml::Evaluator accept_evaluator(candidate_data, config_.test_fraction,
                                       config_.seed);
        double candidate_score = accept_evaluator.ScoreAllFeatures();
        if (candidate_score > current_score + config_.min_improvement) {
          current = std::move(candidate_frame);
          current_score = candidate_score;
          report.tables_joined += log.tables.size();
          log.accepted = true;
        }
      }
    }
    log.score_after = current_score;
    report.batches.push_back(std::move(log));
  }

  // 5. Final estimate on the augmented table. The stage scope closes
  // before the metrics snapshot below so its own latency shows up in this
  // run's report. An interrupt before this stage skips the (expensive)
  // final estimators: the partial report carries the score after the last
  // decided batch.
  if (interrupted_now()) report.interrupted = true;
  if (report.interrupted) {
    report.final_score = current_score;
  } else {
    trace::StageScope final_scope("final_estimate");
    ARDA_ASSIGN_OR_RETURN(ml::Dataset final_data,
                          BuildDataset(current, task.target_column,
                                       task.task, config_.encode));
    ml::Evaluator final_evaluator(final_data, config_.test_fraction,
                                  config_.seed);
    report.final_score =
        final_evaluator.FinalScore(ml::AllFeatureIndices(
            final_data.NumFeatures()));
    report.selected_features = final_data.feature_names;

    ARDA_ASSIGN_OR_RETURN(ml::Dataset base_data,
                          BuildDataset(current.Select(
                                           coreset_base.ColumnNames())
                                           .value(),
                                       task.target_column, task.task,
                                       config_.encode));
    ml::Evaluator base_final(base_data, config_.test_fraction,
                             config_.seed);
    report.base_score = base_final.FinalScore(
        ml::AllFeatureIndices(base_data.NumFeatures()));
  }

  report.augmented = std::move(current);
  report.total_seconds = total_watch.ElapsedSeconds();
  metrics::UpdatePeakRssGauge();
  simd::PublishLevelMetrics();
  report.metrics = metrics::GlobalRegistry().Snapshot();
  return report;
}

}  // namespace arda::core
