#include "core/options.h"

#include "util/log.h"

namespace arda::core {

Status ApplyLogOptions(const LogOptions& options) {
  if (!options.level.empty() && !log::SetLevelFromSpec(options.level)) {
    return Status::InvalidArgument(
        "bad log level: " + options.level +
        " (want debug|info|warn|error|off)");
  }
  if (!options.format.empty() && !log::SetFormatFromSpec(options.format)) {
    return Status::InvalidArgument("bad log format: " + options.format +
                                   " (want text|json)");
  }
  return Status::Ok();
}

Result<ml::TaskType> ParseTaskType(const std::string& task) {
  if (task == "regression") return ml::TaskType::kRegression;
  if (task == "classification") return ml::TaskType::kClassification;
  return Status::InvalidArgument("bad task: " + task +
                                 " (want regression|classification)");
}

Result<ArdaConfig> MakeArdaConfig(const RunOptions& options) {
  // Validate even the fields that do not land in the config, so a bad
  // request fails up front instead of deep inside the pipeline.
  ARDA_RETURN_IF_ERROR(ParseTaskType(options.task).status());

  ArdaConfig config;
  config.seed = options.seed;
  config.num_threads = options.num_threads;
  config.selector = options.selector;
  config.join.memory_budget_bytes = options.memory_budget_bytes;
  if (options.plan == "budget") {
    config.plan = JoinPlanKind::kBudget;
  } else if (options.plan == "table") {
    config.plan = JoinPlanKind::kTableAtATime;
  } else if (options.plan == "full") {
    config.plan = JoinPlanKind::kFullMaterialization;
  } else {
    return Status::InvalidArgument("bad plan: " + options.plan +
                                   " (want budget|table|full)");
  }
  if (options.plan_order == "cost") {
    config.cost_based_ordering = true;
  } else if (options.plan_order == "score") {
    config.cost_based_ordering = false;
  } else {
    return Status::InvalidArgument("bad plan order: " + options.plan_order +
                                   " (want cost|score)");
  }
  if (options.soft_join == "2way") {
    config.join.soft_method = join::SoftJoinMethod::kTwoWayNearest;
  } else if (options.soft_join == "nearest") {
    config.join.soft_method = join::SoftJoinMethod::kNearest;
  } else if (options.soft_join == "hard") {
    config.join.soft_method = join::SoftJoinMethod::kHardExact;
  } else {
    return Status::InvalidArgument("bad soft join: " + options.soft_join +
                                   " (want 2way|nearest|hard)");
  }
  return config;
}

}  // namespace arda::core
