#ifndef ARDA_CORE_OPTIONS_H_
#define ARDA_CORE_OPTIONS_H_

#include <string>

#include "core/config.h"
#include "ml/dataset.h"
#include "util/status.h"

namespace arda::core {

/// String-keyed run options — the spelling shared by the CLI's flags and
/// the augmentation service's per-request JSON. Both front ends translate
/// through MakeArdaConfig below, so a service request and a CLI
/// invocation with the same spellings produce the same ArdaConfig (and,
/// by the determinism contract, byte-identical deterministic reports).
struct RunOptions {
  /// "regression" or "classification".
  std::string task = "regression";
  /// Feature selector name (featsel::MakeSelector registry).
  std::string selector = "rifs";
  /// Join plan: "budget", "table" or "full".
  std::string plan = "budget";
  /// Candidate ordering before batching: "cost" or "score".
  std::string plan_order = "cost";
  /// Soft-key method: "2way", "nearest" or "hard".
  std::string soft_join = "2way";
  uint64_t seed = 42;
  /// Threads for the parallel pipeline regions (0 = hardware
  /// concurrency). Never affects results.
  size_t num_threads = 0;
  /// Soft per-kernel working-set budget in bytes for the join/group-by
  /// radix-partitioned out-of-core paths (0 = unbounded, single-pass
  /// kernels). Like num_threads, never affects results — partitioned
  /// output is bit-identical to the single pass.
  uint64_t memory_budget_bytes = 0;
};

/// Translates options into an ARDA configuration. InvalidArgument on any
/// unknown spelling.
Result<ArdaConfig> MakeArdaConfig(const RunOptions& options);

/// Parses "regression" / "classification"; InvalidArgument otherwise.
Result<ml::TaskType> ParseTaskType(const std::string& task);

/// Logging knobs shared by both front ends (`--log-level`,
/// `--log-format`; docs/observability.md "Structured logging"). Empty
/// string = leave the process default (warn / text, or whatever
/// `ARDA_LOG` armed) untouched.
struct LogOptions {
  std::string level;   // debug | info | warn | error | off
  std::string format;  // text | json
};

/// Applies the non-empty fields to the process logger
/// (util/log.h). InvalidArgument on an unknown spelling — flags fail
/// loudly where the ARDA_LOG environment fallback only warns.
Status ApplyLogOptions(const LogOptions& options);

}  // namespace arda::core

#endif  // ARDA_CORE_OPTIONS_H_
