#ifndef ARDA_CORESET_CORESET_H_
#define ARDA_CORESET_CORESET_H_

#include <string>

#include "dataframe/data_frame.h"
#include "ml/dataset.h"
#include "util/rng.h"
#include "util/status.h"

namespace arda::coreset {

/// Coreset construction strategy (Section 3.1 of the paper).
enum class CoresetMethod {
  /// Keep the full base table.
  kNone,
  /// Uniform row sampling (ARDA's default).
  kUniform,
  /// Per-label uniform sampling so no class is overlooked; falls back to
  /// uniform for regression targets.
  kStratified,
  /// Uniform sampling of rows before the join, then a CountSketch/OSNAP
  /// subspace embedding of the joined numeric matrix (see SketchRows).
  kSketch,
};

/// Returns "none", "uniform", "stratified" or "sketch".
const char* CoresetMethodName(CoresetMethod method);

/// Coreset configuration.
struct CoresetConfig {
  CoresetMethod method = CoresetMethod::kUniform;
  /// Desired number of rows; 0 means HeuristicCoresetSize(n).
  size_t size = 0;
};

/// ARDA's default coreset-size heuristic: the whole table up to 1000 rows,
/// then 1000 + sqrt(n - 1000), capped at n.
size_t HeuristicCoresetSize(size_t num_rows);

/// Samples a row coreset of the base table. `label_column` is used for
/// stratification of classification targets and must exist in `base`.
/// kSketch behaves like kUniform here — the linear-combination sketch can
/// only run after joining, since sketched key values would no longer match
/// any foreign table (Section 3.1).
Result<df::DataFrame> SampleCoreset(const df::DataFrame& base,
                                    const std::string& label_column,
                                    ml::TaskType task,
                                    const CoresetConfig& config, Rng* rng);

/// CountSketch (OSNAP with one nonzero per column) subspace embedding of a
/// fully numeric dataset: each input row is assigned a random output row
/// and added with a random sign. For classification the sketch runs
/// independently within each label so sketched rows keep a meaningful
/// label (the paper's per-label sketching); for regression the target is
/// sketched alongside the features. `target_rows` is a lower bound on the
/// output size (per-label rounding can add a few rows).
ml::Dataset SketchRows(const ml::Dataset& data, size_t target_rows,
                       Rng* rng);

}  // namespace arda::coreset

#endif  // ARDA_CORESET_CORESET_H_
