#include "coreset/coreset.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/fault.h"

namespace arda::coreset {

const char* CoresetMethodName(CoresetMethod method) {
  switch (method) {
    case CoresetMethod::kNone:
      return "none";
    case CoresetMethod::kUniform:
      return "uniform";
    case CoresetMethod::kStratified:
      return "stratified";
    case CoresetMethod::kSketch:
      return "sketch";
  }
  return "unknown";
}

size_t HeuristicCoresetSize(size_t num_rows) {
  if (num_rows <= 1000) return num_rows;
  return std::min(num_rows,
                  1000 + static_cast<size_t>(std::sqrt(
                             static_cast<double>(num_rows - 1000))));
}

Result<df::DataFrame> SampleCoreset(const df::DataFrame& base,
                                    const std::string& label_column,
                                    ml::TaskType task,
                                    const CoresetConfig& config, Rng* rng) {
  ARDA_FAULT_POINT(fault::kCoreset);
  if (!base.HasColumn(label_column)) {
    return Status::NotFound("no such label column: " + label_column);
  }
  const size_t n = base.NumRows();
  size_t size = config.size == 0 ? HeuristicCoresetSize(n) : config.size;
  size = std::min(size, n);
  if (config.method == CoresetMethod::kNone || size == n) {
    return base;
  }

  if (config.method == CoresetMethod::kStratified &&
      task == ml::TaskType::kClassification) {
    // Proportional allocation per label with at least one row per class.
    const df::Column& label = base.col(label_column);
    std::map<std::string, std::vector<size_t>> strata;
    for (size_t r = 0; r < n; ++r) {
      strata[label.IsNull(r) ? "\x1e<null>" : label.ValueToString(r)]
          .push_back(r);
    }
    std::vector<size_t> chosen;
    for (auto& [value, rows] : strata) {
      size_t want = static_cast<size_t>(std::lround(
          static_cast<double>(size) * static_cast<double>(rows.size()) /
          static_cast<double>(n)));
      want = std::clamp<size_t>(want, 1, rows.size());
      std::vector<size_t> picks =
          rng->SampleWithoutReplacement(rows.size(), want);
      for (size_t p : picks) chosen.push_back(rows[p]);
    }
    std::sort(chosen.begin(), chosen.end());
    return base.Take(chosen);
  }

  // Uniform (also used for kSketch pre-join and for stratified regression).
  std::vector<size_t> chosen = rng->SampleWithoutReplacement(n, size);
  std::sort(chosen.begin(), chosen.end());
  return base.Take(chosen);
}

ml::Dataset SketchRows(const ml::Dataset& data, size_t target_rows,
                       Rng* rng) {
  const size_t n = data.NumRows();
  const size_t d = data.NumFeatures();
  if (target_rows >= n || n == 0) return data;

  ml::Dataset out;
  out.task = data.task;
  out.feature_names = data.feature_names;

  if (data.task == ml::TaskType::kClassification) {
    // Sketch independently within each label (the matrix analogue of
    // stratified sampling); sketched rows keep the group's label.
    std::map<int, std::vector<size_t>> groups;
    for (size_t r = 0; r < n; ++r) {
      groups[static_cast<int>(std::lround(data.y[r]))].push_back(r);
    }
    std::vector<std::vector<double>> out_rows;
    for (auto& [label, rows] : groups) {
      size_t want = std::max<size_t>(
          1, static_cast<size_t>(std::lround(
                 static_cast<double>(target_rows) *
                 static_cast<double>(rows.size()) / static_cast<double>(n))));
      want = std::min(want, rows.size());
      // CountSketch: each input row lands in one random bucket with a
      // random sign.
      std::vector<std::vector<double>> buckets(want,
                                               std::vector<double>(d, 0.0));
      std::vector<size_t> bucket_fill(want, 0);
      for (size_t row : rows) {
        size_t b = static_cast<size_t>(rng->UniformUint64(want));
        double sign = rng->Bernoulli(0.5) ? 1.0 : -1.0;
        const double* src = data.x.RowPtr(row);
        for (size_t c = 0; c < d; ++c) buckets[b][c] += sign * src[c];
        ++bucket_fill[b];
      }
      for (size_t b = 0; b < want; ++b) {
        if (bucket_fill[b] == 0) continue;
        // CountSketch buckets are raw signed sums: cross terms cancel in
        // expectation, so norms (and the subspace) are preserved.
        out_rows.push_back(std::move(buckets[b]));
        out.y.push_back(static_cast<double>(label));
      }
    }
    out.x = la::Matrix(out_rows.size(), d);
    for (size_t r = 0; r < out_rows.size(); ++r) {
      out.x.SetRow(r, out_rows[r]);
    }
    return out;
  }

  // Regression: sketch the augmented matrix [X | y] so the target is
  // transformed consistently with the features.
  std::vector<std::vector<double>> buckets(target_rows,
                                           std::vector<double>(d + 1, 0.0));
  std::vector<size_t> bucket_fill(target_rows, 0);
  for (size_t r = 0; r < n; ++r) {
    size_t b = static_cast<size_t>(rng->UniformUint64(target_rows));
    double sign = rng->Bernoulli(0.5) ? 1.0 : -1.0;
    const double* src = data.x.RowPtr(r);
    for (size_t c = 0; c < d; ++c) buckets[b][c] += sign * src[c];
    buckets[b][d] += sign * data.y[r];
    ++bucket_fill[b];
  }
  std::vector<std::vector<double>> kept;
  for (size_t b = 0; b < target_rows; ++b) {
    if (bucket_fill[b] == 0) continue;
    kept.push_back(std::move(buckets[b]));
  }
  out.x = la::Matrix(kept.size(), d);
  out.y.resize(kept.size());
  for (size_t r = 0; r < kept.size(); ++r) {
    for (size_t c = 0; c < d; ++c) out.x(r, c) = kept[r][c];
    out.y[r] = kept[r][d];
  }
  return out;
}

}  // namespace arda::coreset
