#ifndef ARDA_SIMD_KERNELS_H_
#define ARDA_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

// Internal: per-level kernel entry points. dispatch.cc routes the public
// arda::simd kernels here based on the active level. The _Avx2 symbols
// exist only when the build compiled the AVX2 translation unit
// (ARDA_SIMD_COMPILED_AVX2); dispatch guards every reference.

namespace arda::simd::internal {

#define ARDA_SIMD_KERNEL_DECLS(suffix)                                       \
  void Mix64Batch_##suffix(const uint64_t* keys, size_t n, uint64_t* out);   \
  size_t Int64DictLookup_##suffix(                                          \
      const uint64_t* table_hashes, const uint32_t* table_ids,              \
      const int64_t* dict_values, uint64_t mask, const int64_t* keys,       \
      size_t n, uint32_t* out_ids, uint32_t* walk_rows);                     \
  void TupleHashBatch_##suffix(const uint32_t* ids, size_t num_cols,         \
                               size_t stride, size_t n, uint64_t* out);      \
  size_t GroupLookup_##suffix(                                               \
      const uint64_t* table_hashes, const uint32_t* table_ids,              \
      const uint32_t* tuple_store, const uint32_t* ids, size_t num_cols,    \
      size_t stride, uint64_t mask, const uint64_t* hashes, size_t n,        \
      uint64_t* gids, uint32_t* walk_rows);                                  \
  void CountPerGroup_##suffix(const uint64_t* gids, const uint8_t* valid,    \
                              size_t n, size_t* counts);                     \
  void ScatterByGroup_##suffix(const double* values, const uint8_t* valid,   \
                               const uint64_t* gids, size_t n,               \
                               size_t* cursor, double* out);                 \
  void ClassSquares_##suffix(const double* left_counts,                      \
                             const double* class_counts, size_t num_classes, \
                             double* left_sq, double* right_sq);             \
  void GatherValsTargets_##suffix(const double* col, const double* y,        \
                                  const uint32_t* idx, size_t n,             \
                                  double* vals, double* ys);                 \
  double SquaredDistance_##suffix(const double* a, const double* b,          \
                                  size_t n);                                 \
  void SquaredDistanceToMany_##suffix(const double* query,                   \
                                      const double* base, size_t num_points, \
                                      size_t dims, double* out);             \
  void DecodeU64LeToDouble_##suffix(const char* src, size_t n, double* dst); \
  void DecodeU64LeToInt64_##suffix(const char* src, size_t n, int64_t* dst); \
  void ExpandValidityBitmap_##suffix(const uint8_t* bitmap, size_t n,        \
                                     uint8_t* valid);

ARDA_SIMD_KERNEL_DECLS(Scalar)
#if ARDA_SIMD_COMPILED_AVX2
ARDA_SIMD_KERNEL_DECLS(Avx2)
#endif

#undef ARDA_SIMD_KERNEL_DECLS

// splitmix64 finalizer; must match KeyEncoder's Mix64 bit for bit.
inline uint64_t Mix64One(uint64_t value) {
  value += 0x9e3779b97f4a7c15ull;
  value = (value ^ (value >> 30)) * 0xbf58476d1ce4e5b9ull;
  value = (value ^ (value >> 27)) * 0x94d049bb133111ebull;
  return value ^ (value >> 31);
}

inline constexpr uint64_t kFnvOffset = 1469598103934665603ull;
inline constexpr uint64_t kFnvPrime = 1099511628211ull;

}  // namespace arda::simd::internal

#endif  // ARDA_SIMD_KERNELS_H_
