// Scalar reference implementations. These define the semantics every
// other dispatch level must reproduce bit for bit; the AVX2 bodies in
// kernels_avx2.cc mirror each function's structure lane by lane.

#include <cstring>

#include "simd/kernels.h"

namespace arda::simd::internal {

namespace {
constexpr uint32_t kEmptySlot = ~0u;
constexpr uint64_t kMissGroup = ~0ull;
}  // namespace

void Mix64Batch_Scalar(const uint64_t* keys, size_t n, uint64_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = Mix64One(keys[i]);
}

size_t Int64DictLookup_Scalar(const uint64_t* table_hashes,
                              const uint32_t* table_ids,
                              const int64_t* dict_values, uint64_t mask,
                              const int64_t* keys, size_t n,
                              uint32_t* out_ids, uint32_t* walk_rows) {
  size_t walk_count = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t h = Mix64One(static_cast<uint64_t>(keys[i]));
    const size_t slot = static_cast<size_t>(h & mask);
    const uint32_t id = table_ids[slot];
    if (id == kEmptySlot) {
      out_ids[i] = kEmptySlot;  // home slot free: definite miss
    } else if (table_hashes[slot] == h && dict_values[id - 1] == keys[i]) {
      out_ids[i] = id;
    } else {
      walk_rows[walk_count++] = static_cast<uint32_t>(i);
    }
  }
  return walk_count;
}

void TupleHashBatch_Scalar(const uint32_t* ids, size_t num_cols,
                           size_t stride, size_t n, uint64_t* out) {
  for (size_t r = 0; r < n; ++r) {
    uint64_t h = kFnvOffset;
    for (size_t k = 0; k < num_cols; ++k) {
      h = (h ^ ids[k * stride + r]) * kFnvPrime;
    }
    out[r] = Mix64One(h);
  }
}

size_t GroupLookup_Scalar(const uint64_t* table_hashes,
                          const uint32_t* table_ids,
                          const uint32_t* tuple_store, const uint32_t* ids,
                          size_t num_cols, size_t stride, uint64_t mask,
                          const uint64_t* hashes, size_t n, uint64_t* gids,
                          uint32_t* walk_rows) {
  size_t walk_count = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t h = hashes[i];
    const size_t slot = static_cast<size_t>(h & mask);
    const uint32_t gid = table_ids[slot];
    if (gid == kEmptySlot) {
      gids[i] = kMissGroup;
      continue;
    }
    if (table_hashes[slot] == h) {
      const uint32_t* stored = tuple_store + size_t{gid} * num_cols;
      bool match = true;
      for (size_t k = 0; k < num_cols; ++k) {
        if (stored[k] != ids[k * stride + i]) {
          match = false;
          break;
        }
      }
      if (match) {
        gids[i] = gid;
        continue;
      }
    }
    walk_rows[walk_count++] = static_cast<uint32_t>(i);
  }
  return walk_count;
}

void CountPerGroup_Scalar(const uint64_t* gids, const uint8_t* valid,
                          size_t n, size_t* counts) {
  if (valid == nullptr) {
    for (size_t r = 0; r < n; ++r) ++counts[gids[r]];
    return;
  }
  for (size_t r = 0; r < n; ++r) {
    if (valid[r]) ++counts[gids[r]];
  }
}

void ScatterByGroup_Scalar(const double* values, const uint8_t* valid,
                           const uint64_t* gids, size_t n, size_t* cursor,
                           double* out) {
  if (valid == nullptr) {
    for (size_t r = 0; r < n; ++r) out[cursor[gids[r]]++] = values[r];
    return;
  }
  for (size_t r = 0; r < n; ++r) {
    if (valid[r]) out[cursor[gids[r]]++] = values[r];
  }
}

void ClassSquares_Scalar(const double* left_counts,
                         const double* class_counts, size_t num_classes,
                         double* left_sq, double* right_sq) {
  // Plain sequential sums: exact (and therefore order-independent)
  // because every operand is a whole-number count below 2^26.
  double ls = 0.0;
  double rs = 0.0;
  for (size_t c = 0; c < num_classes; ++c) {
    const double lc = left_counts[c];
    const double rc = class_counts[c] - lc;
    ls += lc * lc;
    rs += rc * rc;
  }
  *left_sq = ls;
  *right_sq = rs;
}

void GatherValsTargets_Scalar(const double* col, const double* y,
                              const uint32_t* idx, size_t n, double* vals,
                              double* ys) {
  for (size_t i = 0; i < n; ++i) {
    const size_t row = idx[i];
    vals[i] = col[row];
    ys[i] = y[row];
  }
}

void SquaredDistanceToMany_Scalar(const double* query, const double* base,
                                  size_t num_points, size_t dims,
                                  double* out) {
  // One pairwise distance per row, each computed with the same pinned
  // accumulation order as SquaredDistance_Scalar — this is exactly the
  // loop KNN ran before the batch kernel existed.
  for (size_t p = 0; p < num_points; ++p) {
    out[p] = SquaredDistance_Scalar(query, base + p * dims, dims);
  }
}

double SquaredDistance_Scalar(const double* a, const double* b, size_t n) {
  const size_t vec = n & ~size_t{3};
  double total;
  if (vec == 0) {
    total = 0.0;
  } else {
    // The pinned lane-structured order (see simd.h): four running sums,
    // combined as (s0+s2) + (s1+s3) to match the AVX2 128-bit fold.
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (size_t i = 0; i < vec; i += 4) {
      const double d0 = a[i] - b[i];
      const double d1 = a[i + 1] - b[i + 1];
      const double d2 = a[i + 2] - b[i + 2];
      const double d3 = a[i + 3] - b[i + 3];
      s0 += d0 * d0;
      s1 += d1 * d1;
      s2 += d2 * d2;
      s3 += d3 * d3;
    }
    total = (s0 + s2) + (s1 + s3);
  }
  for (size_t i = vec; i < n; ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

void DecodeU64LeToDouble_Scalar(const char* src, size_t n, double* dst) {
  for (size_t i = 0; i < n; ++i) {
    const unsigned char* p =
        reinterpret_cast<const unsigned char*>(src) + i * 8;
    uint64_t bits = 0;
    for (int b = 7; b >= 0; --b) bits = (bits << 8) | p[b];
    double v;
    std::memcpy(&v, &bits, sizeof v);
    dst[i] = v;
  }
}

void DecodeU64LeToInt64_Scalar(const char* src, size_t n, int64_t* dst) {
  for (size_t i = 0; i < n; ++i) {
    const unsigned char* p =
        reinterpret_cast<const unsigned char*>(src) + i * 8;
    uint64_t bits = 0;
    for (int b = 7; b >= 0; --b) bits = (bits << 8) | p[b];
    dst[i] = static_cast<int64_t>(bits);
  }
}

void ExpandValidityBitmap_Scalar(const uint8_t* bitmap, size_t n,
                                 uint8_t* valid) {
  for (size_t i = 0; i < n; ++i) {
    valid[i] = (bitmap[i >> 3] >> (i & 7)) & 1u;
  }
}

}  // namespace arda::simd::internal
