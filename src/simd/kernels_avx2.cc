// AVX2 implementations. This is the only translation unit compiled with
// -mavx2 (plus -ffp-contract=off so mul+add never fuses into FMA, which
// would change float bits vs the scalar reference); it is reached only
// after dispatch.cc's runtime CPU probe. Each function mirrors the
// structure of its _Scalar twin: identical miss/walk partitions for the
// probe kernels, the identical pinned accumulation order for
// SquaredDistance, and exact integer/whole-number arithmetic everywhere
// else, so outputs are bit-identical at both dispatch levels.

#if defined(ARDA_SIMD_COMPILED_AVX2)

#include <immintrin.h>

#include <cstring>

#include "simd/kernels.h"

namespace arda::simd::internal {

namespace {

constexpr uint32_t kEmptySlot = ~0u;
constexpr uint64_t kMissGroup = ~0ull;

// 64x64->64 multiply, which AVX2 lacks natively: combine the 32-bit
// cross products (Agner Fog's vectorclass sequence).
inline __m256i Mullo64(__m256i a, __m256i b) {
  const __m256i bswap = _mm256_shuffle_epi32(b, 0xB1);
  const __m256i prodlh = _mm256_mullo_epi32(a, bswap);
  const __m256i zero = _mm256_setzero_si256();
  const __m256i prodlh2 = _mm256_hadd_epi32(prodlh, zero);
  const __m256i prodlh3 = _mm256_shuffle_epi32(prodlh2, 0x73);
  const __m256i prodll = _mm256_mul_epu32(a, b);
  return _mm256_add_epi64(prodll, prodlh3);
}

// Four-lane splitmix64 finalizer; bitwise equal to Mix64One per lane.
inline __m256i Mix64Vec(__m256i x) {
  x = _mm256_add_epi64(
      x, _mm256_set1_epi64x(static_cast<long long>(0x9e3779b97f4a7c15ull)));
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 30));
  x = Mullo64(
      x, _mm256_set1_epi64x(static_cast<long long>(0xbf58476d1ce4e5b9ull)));
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 27));
  x = Mullo64(
      x, _mm256_set1_epi64x(static_cast<long long>(0x94d049bb133111ebull)));
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

}  // namespace

void Mix64Batch_Avx2(const uint64_t* keys, size_t n, uint64_t* out) {
  const size_t vec = n & ~size_t{3};
  for (size_t i = 0; i < vec; i += 4) {
    const __m256i k = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), Mix64Vec(k));
  }
  for (size_t i = vec; i < n; ++i) out[i] = Mix64One(keys[i]);
}

size_t Int64DictLookup_Avx2(const uint64_t* table_hashes,
                            const uint32_t* table_ids,
                            const int64_t* dict_values, uint64_t mask,
                            const int64_t* keys, size_t n,
                            uint32_t* out_ids, uint32_t* walk_rows) {
  size_t walk_count = 0;
  const size_t vec = n & ~size_t{3};
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  const __m256i vempty =
      _mm256_set1_epi64x(static_cast<long long>(uint64_t{kEmptySlot}));
  const __m256i vone = _mm256_set1_epi64x(1);
  const __m256i vzero = _mm256_setzero_si256();
  for (size_t i = 0; i < vec; i += 4) {
    const __m256i k = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + i));
    const __m256i h = Mix64Vec(k);
    const __m256i slot = _mm256_and_si256(h, vmask);
    const __m256i th = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(table_hashes), slot, 8);
    const __m128i tid = _mm256_i64gather_epi32(
        reinterpret_cast<const int*>(table_ids), slot, 4);
    const __m256i tid64 = _mm256_cvtepu32_epi64(tid);
    const __m256i empty = _mm256_cmpeq_epi64(tid64, vempty);
    // Candidate lanes: occupied home slot whose hash matches; only these
    // gather a dictionary value (masked, so no out-of-bounds index from
    // the empty lanes' id of ~0).
    const __m256i cand =
        _mm256_andnot_si256(empty, _mm256_cmpeq_epi64(th, h));
    const __m256i vidx = _mm256_sub_epi64(tid64, vone);
    const __m256i vals = _mm256_mask_i64gather_epi64(
        vzero, reinterpret_cast<const long long*>(dict_values), vidx, cand,
        8);
    const __m256i vmatch =
        _mm256_and_si256(cand, _mm256_cmpeq_epi64(vals, k));
    const int m_empty = _mm256_movemask_pd(_mm256_castsi256_pd(empty));
    const int m_match = _mm256_movemask_pd(_mm256_castsi256_pd(vmatch));
    alignas(16) uint32_t tids[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(tids), tid);
    for (int lane = 0; lane < 4; ++lane) {
      if ((m_empty >> lane) & 1) {
        out_ids[i + lane] = kEmptySlot;
      } else if ((m_match >> lane) & 1) {
        out_ids[i + lane] = tids[lane];
      } else {
        walk_rows[walk_count++] = static_cast<uint32_t>(i + lane);
      }
    }
  }
  for (size_t i = vec; i < n; ++i) {
    const uint64_t h = Mix64One(static_cast<uint64_t>(keys[i]));
    const size_t slot = static_cast<size_t>(h & mask);
    const uint32_t id = table_ids[slot];
    if (id == kEmptySlot) {
      out_ids[i] = kEmptySlot;
    } else if (table_hashes[slot] == h && dict_values[id - 1] == keys[i]) {
      out_ids[i] = id;
    } else {
      walk_rows[walk_count++] = static_cast<uint32_t>(i);
    }
  }
  return walk_count;
}

void TupleHashBatch_Avx2(const uint32_t* ids, size_t num_cols,
                         size_t stride, size_t n, uint64_t* out) {
  const size_t vec = n & ~size_t{3};
  const __m256i offset =
      _mm256_set1_epi64x(static_cast<long long>(kFnvOffset));
  const __m256i prime =
      _mm256_set1_epi64x(static_cast<long long>(kFnvPrime));
  for (size_t r = 0; r < vec; r += 4) {
    __m256i h = offset;
    for (size_t k = 0; k < num_cols; ++k) {
      const __m128i id32 = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(ids + k * stride + r));
      h = Mullo64(_mm256_xor_si256(h, _mm256_cvtepu32_epi64(id32)), prime);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + r), Mix64Vec(h));
  }
  for (size_t r = vec; r < n; ++r) {
    uint64_t h = kFnvOffset;
    for (size_t k = 0; k < num_cols; ++k) {
      h = (h ^ ids[k * stride + r]) * kFnvPrime;
    }
    out[r] = Mix64One(h);
  }
}

size_t GroupLookup_Avx2(const uint64_t* table_hashes,
                        const uint32_t* table_ids,
                        const uint32_t* tuple_store, const uint32_t* ids,
                        size_t num_cols, size_t stride, uint64_t mask,
                        const uint64_t* hashes, size_t n, uint64_t* gids,
                        uint32_t* walk_rows) {
  size_t walk_count = 0;
  const size_t vec = n & ~size_t{3};
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  const __m256i vempty =
      _mm256_set1_epi64x(static_cast<long long>(uint64_t{kEmptySlot}));
  for (size_t i = 0; i < vec; i += 4) {
    const __m256i h = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(hashes + i));
    const __m256i slot = _mm256_and_si256(h, vmask);
    const __m256i th = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(table_hashes), slot, 8);
    const __m128i gid = _mm256_i64gather_epi32(
        reinterpret_cast<const int*>(table_ids), slot, 4);
    const __m256i gid64 = _mm256_cvtepu32_epi64(gid);
    const __m256i empty = _mm256_cmpeq_epi64(gid64, vempty);
    const __m256i cand =
        _mm256_andnot_si256(empty, _mm256_cmpeq_epi64(th, h));
    const int m_empty = _mm256_movemask_pd(_mm256_castsi256_pd(empty));
    const int m_cand = _mm256_movemask_pd(_mm256_castsi256_pd(cand));
    alignas(16) uint32_t lane_gids[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(lane_gids), gid);
    for (int lane = 0; lane < 4; ++lane) {
      const size_t row = i + static_cast<size_t>(lane);
      if ((m_empty >> lane) & 1) {
        gids[row] = kMissGroup;
        continue;
      }
      if ((m_cand >> lane) & 1) {
        const uint32_t g = lane_gids[lane];
        const uint32_t* stored = tuple_store + size_t{g} * num_cols;
        bool match = true;
        for (size_t k = 0; k < num_cols; ++k) {
          if (stored[k] != ids[k * stride + row]) {
            match = false;
            break;
          }
        }
        if (match) {
          gids[row] = g;
          continue;
        }
      }
      walk_rows[walk_count++] = static_cast<uint32_t>(row);
    }
  }
  for (size_t i = vec; i < n; ++i) {
    const uint64_t h = hashes[i];
    const size_t slot = static_cast<size_t>(h & mask);
    const uint32_t gid = table_ids[slot];
    if (gid == kEmptySlot) {
      gids[i] = kMissGroup;
      continue;
    }
    if (table_hashes[slot] == h) {
      const uint32_t* stored = tuple_store + size_t{gid} * num_cols;
      bool match = true;
      for (size_t k = 0; k < num_cols; ++k) {
        if (stored[k] != ids[k * stride + i]) {
          match = false;
          break;
        }
      }
      if (match) {
        gids[i] = gid;
        continue;
      }
    }
    walk_rows[walk_count++] = static_cast<uint32_t>(i);
  }
  return walk_count;
}

void CountPerGroup_Avx2(const uint64_t* gids, const uint8_t* valid,
                        size_t n, size_t* counts) {
  if (valid == nullptr) {
    for (size_t r = 0; r < n; ++r) ++counts[gids[r]];
    return;
  }
  const __m256i zero = _mm256_setzero_si256();
  const size_t vec = n & ~size_t{31};
  size_t r = 0;
  for (; r < vec; r += 32) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(valid + r));
    uint32_t m = ~static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, zero)));
    if (m == 0) continue;
    if (m == 0xFFFFFFFFu) {
      for (size_t j = 0; j < 32; ++j) ++counts[gids[r + j]];
      continue;
    }
    while (m != 0) {
      const unsigned j = static_cast<unsigned>(__builtin_ctz(m));
      m &= m - 1;
      ++counts[gids[r + j]];
    }
  }
  for (; r < n; ++r) {
    if (valid[r]) ++counts[gids[r]];
  }
}

void ScatterByGroup_Avx2(const double* values, const uint8_t* valid,
                         const uint64_t* gids, size_t n, size_t* cursor,
                         double* out) {
  if (valid == nullptr) {
    for (size_t r = 0; r < n; ++r) out[cursor[gids[r]]++] = values[r];
    return;
  }
  const __m256i zero = _mm256_setzero_si256();
  const size_t vec = n & ~size_t{31};
  size_t r = 0;
  for (; r < vec; r += 32) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(valid + r));
    uint32_t m = ~static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, zero)));
    if (m == 0) continue;
    if (m == 0xFFFFFFFFu) {
      for (size_t j = 0; j < 32; ++j) {
        out[cursor[gids[r + j]]++] = values[r + j];
      }
      continue;
    }
    // ctz visits set bits in ascending row order, preserving the
    // per-group value order the ordered aggregates rely on.
    while (m != 0) {
      const unsigned j = static_cast<unsigned>(__builtin_ctz(m));
      m &= m - 1;
      out[cursor[gids[r + j]]++] = values[r + j];
    }
  }
  for (; r < n; ++r) {
    if (valid[r]) out[cursor[gids[r]]++] = values[r];
  }
}

void ClassSquares_Avx2(const double* left_counts,
                       const double* class_counts, size_t num_classes,
                       double* left_sq, double* right_sq) {
  // Lane association differs from the scalar sequential sum, which is
  // fine on this kernel's domain: whole-number counts below 2^26 keep
  // every partial sum exact, so any order yields the same bits.
  const size_t vec = num_classes & ~size_t{3};
  double ls = 0.0;
  double rs = 0.0;
  if (vec != 0) {
    // Four accumulator pairs cut the addition-latency chain to a quarter;
    // merging them afterwards is just another exact whole-number
    // reassociation (same bits in any order on this domain).
    __m256d acc_l = _mm256_setzero_pd();
    __m256d acc_r = _mm256_setzero_pd();
    __m256d acc_l1 = _mm256_setzero_pd();
    __m256d acc_r1 = _mm256_setzero_pd();
    __m256d acc_l2 = _mm256_setzero_pd();
    __m256d acc_r2 = _mm256_setzero_pd();
    __m256d acc_l3 = _mm256_setzero_pd();
    __m256d acc_r3 = _mm256_setzero_pd();
    const size_t vec4 = num_classes & ~size_t{15};
    const size_t vec2 = num_classes & ~size_t{7};
    size_t c = 0;
    for (; c < vec4; c += 16) {
      const __m256d lc0 = _mm256_loadu_pd(left_counts + c);
      const __m256d cc0 = _mm256_loadu_pd(class_counts + c);
      const __m256d rc0 = _mm256_sub_pd(cc0, lc0);
      acc_l = _mm256_add_pd(acc_l, _mm256_mul_pd(lc0, lc0));
      acc_r = _mm256_add_pd(acc_r, _mm256_mul_pd(rc0, rc0));
      const __m256d lc1 = _mm256_loadu_pd(left_counts + c + 4);
      const __m256d cc1 = _mm256_loadu_pd(class_counts + c + 4);
      const __m256d rc1 = _mm256_sub_pd(cc1, lc1);
      acc_l1 = _mm256_add_pd(acc_l1, _mm256_mul_pd(lc1, lc1));
      acc_r1 = _mm256_add_pd(acc_r1, _mm256_mul_pd(rc1, rc1));
      const __m256d lc2 = _mm256_loadu_pd(left_counts + c + 8);
      const __m256d cc2 = _mm256_loadu_pd(class_counts + c + 8);
      const __m256d rc2 = _mm256_sub_pd(cc2, lc2);
      acc_l2 = _mm256_add_pd(acc_l2, _mm256_mul_pd(lc2, lc2));
      acc_r2 = _mm256_add_pd(acc_r2, _mm256_mul_pd(rc2, rc2));
      const __m256d lc3 = _mm256_loadu_pd(left_counts + c + 12);
      const __m256d cc3 = _mm256_loadu_pd(class_counts + c + 12);
      const __m256d rc3 = _mm256_sub_pd(cc3, lc3);
      acc_l3 = _mm256_add_pd(acc_l3, _mm256_mul_pd(lc3, lc3));
      acc_r3 = _mm256_add_pd(acc_r3, _mm256_mul_pd(rc3, rc3));
    }
    for (; c < vec2; c += 8) {
      const __m256d lc0 = _mm256_loadu_pd(left_counts + c);
      const __m256d cc0 = _mm256_loadu_pd(class_counts + c);
      const __m256d rc0 = _mm256_sub_pd(cc0, lc0);
      acc_l = _mm256_add_pd(acc_l, _mm256_mul_pd(lc0, lc0));
      acc_r = _mm256_add_pd(acc_r, _mm256_mul_pd(rc0, rc0));
      const __m256d lc1 = _mm256_loadu_pd(left_counts + c + 4);
      const __m256d cc1 = _mm256_loadu_pd(class_counts + c + 4);
      const __m256d rc1 = _mm256_sub_pd(cc1, lc1);
      acc_l1 = _mm256_add_pd(acc_l1, _mm256_mul_pd(lc1, lc1));
      acc_r1 = _mm256_add_pd(acc_r1, _mm256_mul_pd(rc1, rc1));
    }
    for (; c < vec; c += 4) {
      const __m256d lc = _mm256_loadu_pd(left_counts + c);
      const __m256d cc = _mm256_loadu_pd(class_counts + c);
      const __m256d rc = _mm256_sub_pd(cc, lc);
      acc_l = _mm256_add_pd(acc_l, _mm256_mul_pd(lc, lc));
      acc_r = _mm256_add_pd(acc_r, _mm256_mul_pd(rc, rc));
    }
    acc_l = _mm256_add_pd(_mm256_add_pd(acc_l, acc_l2),
                          _mm256_add_pd(acc_l1, acc_l3));
    acc_r = _mm256_add_pd(_mm256_add_pd(acc_r, acc_r2),
                          _mm256_add_pd(acc_r1, acc_r3));
    const __m128d l2 = _mm_add_pd(_mm256_castpd256_pd128(acc_l),
                                  _mm256_extractf128_pd(acc_l, 1));
    const __m128d r2 = _mm_add_pd(_mm256_castpd256_pd128(acc_r),
                                  _mm256_extractf128_pd(acc_r, 1));
    ls = _mm_cvtsd_f64(l2) + _mm_cvtsd_f64(_mm_unpackhi_pd(l2, l2));
    rs = _mm_cvtsd_f64(r2) + _mm_cvtsd_f64(_mm_unpackhi_pd(r2, r2));
  }
  for (size_t c = vec; c < num_classes; ++c) {
    const double lc = left_counts[c];
    const double rc = class_counts[c] - lc;
    ls += lc * lc;
    rs += rc * rc;
  }
  *left_sq = ls;
  *right_sq = rs;
}

void GatherValsTargets_Avx2(const double* col, const double* y,
                            const uint32_t* idx, size_t n, double* vals,
                            double* ys) {
  const size_t vec = n & ~size_t{3};
  for (size_t i = 0; i < vec; i += 4) {
    const __m128i id32 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    _mm256_storeu_pd(vals + i, _mm256_i32gather_pd(col, id32, 8));
    _mm256_storeu_pd(ys + i, _mm256_i32gather_pd(y, id32, 8));
  }
  for (size_t i = vec; i < n; ++i) {
    const size_t row = idx[i];
    vals[i] = col[row];
    ys[i] = y[row];
  }
}

void SquaredDistanceToMany_Avx2(const double* query, const double* base,
                                size_t num_points, size_t dims,
                                double* out) {
  // Vectorizes ACROSS rows: four points are in flight at once, each with
  // its own accumulator whose lanes run exactly the scalar reference's
  // s0..s3 partial sums for that point. Per point the operation sequence
  // (and therefore every float bit) is identical to SquaredDistance — the
  // batch form only breaks the addition latency chain by interleaving
  // four independent chains, which is where the speedup comes from.
  const size_t vec = dims & ~size_t{3};
  size_t p = 0;
  if (vec != 0) {
    // Six rows per block: six independent addition chains are enough to
    // keep both FP add ports busy, while the working set (6 accumulators,
    // the query block, and a couple of temporaries) still fits the 16
    // ymm registers — an 8-row variant measurably spills.
    for (; p + 6 <= num_points; p += 6) {
      const double* b0 = base + p * dims;
      const double* b1 = b0 + dims;
      const double* b2 = b1 + dims;
      const double* b3 = b2 + dims;
      const double* b4 = b3 + dims;
      const double* b5 = b4 + dims;
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      __m256d acc2 = _mm256_setzero_pd();
      __m256d acc3 = _mm256_setzero_pd();
      __m256d acc4 = _mm256_setzero_pd();
      __m256d acc5 = _mm256_setzero_pd();
      for (size_t i = 0; i < vec; i += 4) {
        const __m256d q = _mm256_loadu_pd(query + i);
        const __m256d d0 = _mm256_sub_pd(q, _mm256_loadu_pd(b0 + i));
        const __m256d d1 = _mm256_sub_pd(q, _mm256_loadu_pd(b1 + i));
        const __m256d d2 = _mm256_sub_pd(q, _mm256_loadu_pd(b2 + i));
        acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(d0, d0));
        acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(d1, d1));
        acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(d2, d2));
        const __m256d d3 = _mm256_sub_pd(q, _mm256_loadu_pd(b3 + i));
        const __m256d d4 = _mm256_sub_pd(q, _mm256_loadu_pd(b4 + i));
        const __m256d d5 = _mm256_sub_pd(q, _mm256_loadu_pd(b5 + i));
        acc3 = _mm256_add_pd(acc3, _mm256_mul_pd(d3, d3));
        acc4 = _mm256_add_pd(acc4, _mm256_mul_pd(d4, d4));
        acc5 = _mm256_add_pd(acc5, _mm256_mul_pd(d5, d5));
      }
      // The same (s0+s2) + (s1+s3) fold as the single-pair kernel.
      const __m256d accs[6] = {acc0, acc1, acc2, acc3, acc4, acc5};
      const double* rows[6] = {b0, b1, b2, b3, b4, b5};
      for (int j = 0; j < 6; ++j) {
        const __m128d s = _mm_add_pd(_mm256_castpd256_pd128(accs[j]),
                                     _mm256_extractf128_pd(accs[j], 1));
        double total =
            _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
        for (size_t i = vec; i < dims; ++i) {
          const double d = query[i] - rows[j][i];
          total += d * d;
        }
        out[p + static_cast<size_t>(j)] = total;
      }
    }
  }
  for (; p < num_points; ++p) {
    out[p] = SquaredDistance_Avx2(query, base + p * dims, dims);
  }
}

double SquaredDistance_Avx2(const double* a, const double* b, size_t n) {
  const size_t vec = n & ~size_t{3};
  double total;
  if (vec == 0) {
    total = 0.0;
  } else {
    // Lane j of acc runs exactly the scalar reference's s<j> sum; the
    // fold below is the scalar (s0+s2) + (s1+s3). mul then add, never
    // FMA, so the bits match the scalar path.
    __m256d acc = _mm256_setzero_pd();
    for (size_t i = 0; i < vec; i += 4) {
      const __m256d d =
          _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
    }
    const __m128d s = _mm_add_pd(_mm256_castpd256_pd128(acc),
                                 _mm256_extractf128_pd(acc, 1));
    total = _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
  }
  for (size_t i = vec; i < n; ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

void DecodeU64LeToDouble_Avx2(const char* src, size_t n, double* dst) {
  // x86 is little-endian, so the LE wire format is a straight copy; the
  // win over the scalar byte-reconstruction loop is the 32-byte moves.
  const size_t vec = n & ~size_t{3};
  for (size_t i = 0; i < vec; i += 4) {
    _mm256_storeu_pd(
        dst + i,
        _mm256_loadu_pd(reinterpret_cast<const double*>(src + i * 8)));
  }
  for (size_t i = vec; i < n; ++i) {
    std::memcpy(dst + i, src + i * 8, sizeof(double));
  }
}

void DecodeU64LeToInt64_Avx2(const char* src, size_t n, int64_t* dst) {
  const size_t vec = n & ~size_t{3};
  for (size_t i = 0; i < vec; i += 4) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(src + i * 8)));
  }
  for (size_t i = vec; i < n; ++i) {
    std::memcpy(dst + i, src + i * 8, sizeof(int64_t));
  }
}

void ExpandValidityBitmap_Avx2(const uint8_t* bitmap, size_t n,
                               uint8_t* valid) {
  // 32 bits -> 32 bytes per step: broadcast a 4-byte bitmap word,
  // shuffle each source byte across its 8 output lanes, isolate each
  // lane's bit and normalize to 0/1.
  const __m256i sel = _mm256_setr_epi8(
      0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1,  //
      2, 2, 2, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3, 3, 3);
  const __m256i bits = _mm256_setr_epi8(
      1, 2, 4, 8, 16, 32, 64, -128, 1, 2, 4, 8, 16, 32, 64, -128,  //
      1, 2, 4, 8, 16, 32, 64, -128, 1, 2, 4, 8, 16, 32, 64, -128);
  const __m256i ones = _mm256_set1_epi8(1);
  const size_t vec = n & ~size_t{31};
  for (size_t i = 0; i < vec; i += 32) {
    uint32_t word;
    std::memcpy(&word, bitmap + (i >> 3), sizeof word);
    const __m256i bytes = _mm256_shuffle_epi8(
        _mm256_set1_epi32(static_cast<int>(word)), sel);
    const __m256i hit =
        _mm256_cmpeq_epi8(_mm256_and_si256(bytes, bits), bits);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(valid + i),
                        _mm256_and_si256(hit, ones));
  }
  for (size_t i = vec; i < n; ++i) {
    valid[i] = (bitmap[i >> 3] >> (i & 7)) & 1u;
  }
}

}  // namespace arda::simd::internal

#endif  // ARDA_SIMD_COMPILED_AVX2
