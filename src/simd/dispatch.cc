// Runtime dispatch for the arda::simd kernels. This translation unit is
// compiled WITHOUT -mavx2 (baseline x86-64), so the binary can safely
// reach this code on any machine; only the guarded calls into
// kernels_avx2.cc require AVX2, and they are taken only after the CPU
// probe succeeds.

#include "simd/simd.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "simd/kernels.h"
#include "util/metrics.h"

namespace arda::simd {

namespace {

[[maybe_unused]] bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(_M_X64)
  // Masked by the OS XCR0 state, so this is also false when the kernel
  // does not save the ymm registers.
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

SimdLevel HighestSupported() {
  return Avx2Supported() ? SimdLevel::kAvx2 : SimdLevel::kScalar;
}

// The bulk level plus the probe-kernel level resolved together. Under
// `auto` (or an unset/unrecognized spec) the bulk kernels get the highest
// supported level but the open-addressing probes stay scalar: the
// home-slot probe is load-latency-bound and out-of-order scalar loads
// beat AVX2 gathers there (bench_kernels `simd_hash_probe` measured ~0.8x
// for AVX2 — docs/benchmarks.md). An explicit `scalar`/`avx2` pins every
// kernel, probes included.
struct ResolvedLevels {
  SimdLevel level;
  SimdLevel probe;
};

ResolvedLevels ResolveFromEnv() {
  const char* env = std::getenv("ARDA_SIMD");
  if (env != nullptr && *env != '\0') {
    const std::string_view spec(env);
    if (spec == "scalar") return {SimdLevel::kScalar, SimdLevel::kScalar};
    if (spec == "avx2" && Avx2Supported()) {
      return {SimdLevel::kAvx2, SimdLevel::kAvx2};
    }
    // "avx2" on a machine without AVX2 (and anything unrecognized)
    // degrades to the auto policy instead of crashing on an illegal
    // instruction; --simd= reports unknown specs as errors.
  }
  return {HighestSupported(), SimdLevel::kScalar};
}

// The dispatch levels. ARDA_SIMD is consulted exactly once per process —
// by the explicit InitFromEnvironment() call in main(), or lazily on the
// first kernel dispatch for library embedders that never call it. Either
// way the read happens through one std::once_flag, so no worker thread
// ever races std::getenv against a setenv elsewhere in the process, and
// later environment changes are deliberately invisible (the level is
// process-wide, not per-request; see docs/observability.md).
std::atomic<int> g_level{static_cast<int>(SimdLevel::kScalar)};
std::atomic<int> g_probe_level{static_cast<int>(SimdLevel::kScalar)};
std::once_flag g_env_once;

void InitFromEnvOnce() {
  std::call_once(g_env_once, [] {
    const ResolvedLevels resolved = ResolveFromEnv();
    g_level.store(static_cast<int>(resolved.level),
                  std::memory_order_relaxed);
    g_probe_level.store(static_cast<int>(resolved.probe),
                        std::memory_order_relaxed);
  });
}

std::atomic<int>& LevelStorage() {
  InitFromEnvOnce();
  return g_level;
}

std::atomic<int>& ProbeStorage() {
  InitFromEnvOnce();
  return g_probe_level;
}

}  // namespace

void InitFromEnvironment() { InitFromEnvOnce(); }

bool Avx2Supported() {
#if ARDA_SIMD_COMPILED_AVX2
  static const bool supported = CpuHasAvx2();
  return supported;
#else
  return false;
#endif
}

SimdLevel ActiveLevel() {
  return static_cast<SimdLevel>(
      LevelStorage().load(std::memory_order_relaxed));
}

const char* LevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

const char* ActiveLevelName() { return LevelName(ActiveLevel()); }

bool SetLevel(SimdLevel level) {
  if (level == SimdLevel::kAvx2 && !Avx2Supported()) return false;
  LevelStorage().store(static_cast<int>(level),
                       std::memory_order_relaxed);
  // An explicit pin covers every kernel: benchmarks and tests that ask
  // for a level expect the probes to run at that level too.
  ProbeStorage().store(static_cast<int>(level), std::memory_order_relaxed);
  return true;
}

bool SetLevelFromSpec(std::string_view spec) {
  if (spec == "auto") {
    // Auto keeps the probes scalar regardless of the bulk level — the
    // measured-faster default (see ProbeLevel in simd.h).
    if (!SetLevel(HighestSupported())) return false;
    return SetProbeLevel(SimdLevel::kScalar);
  }
  if (spec == "scalar") return SetLevel(SimdLevel::kScalar);
  if (spec == "avx2") return SetLevel(SimdLevel::kAvx2);
  return false;
}

SimdLevel ProbeLevel() {
  return static_cast<SimdLevel>(
      ProbeStorage().load(std::memory_order_relaxed));
}

bool SetProbeLevel(SimdLevel level) {
  if (level == SimdLevel::kAvx2 && !Avx2Supported()) return false;
  ProbeStorage().store(static_cast<int>(level), std::memory_order_relaxed);
  return true;
}

std::string DispatchSummary() {
  const SimdLevel level = ActiveLevel();
  const SimdLevel probe = ProbeLevel();
  if (probe == level) return LevelName(level);
  return std::string(LevelName(level)) + "(probe=" + LevelName(probe) +
         ")";
}

void PublishLevelMetrics() {
  metrics::SetGauge("simd.level",
                    static_cast<double>(static_cast<int>(ActiveLevel())));
  metrics::SetGauge("simd.probe_level",
                    static_cast<double>(static_cast<int>(ProbeLevel())));
  metrics::SetGauge("simd.avx2_supported", Avx2Supported() ? 1.0 : 0.0);
}

// Every kernel dispatches on the cached level; `return` of a void call is
// deliberate so one macro covers both void and value-returning kernels.
#if ARDA_SIMD_COMPILED_AVX2
#define ARDA_SIMD_DISPATCH(fn, ...)                     \
  do {                                                  \
    if (ActiveLevel() == SimdLevel::kAvx2) {            \
      return internal::fn##_Avx2(__VA_ARGS__);          \
    }                                                   \
    return internal::fn##_Scalar(__VA_ARGS__);          \
  } while (0)
// The open-addressing probe kernels dispatch on the separate probe level
// (scalar under `auto`; see ProbeLevel in simd.h).
#define ARDA_SIMD_DISPATCH_PROBE(fn, ...)               \
  do {                                                  \
    if (ProbeLevel() == SimdLevel::kAvx2) {             \
      return internal::fn##_Avx2(__VA_ARGS__);          \
    }                                                   \
    return internal::fn##_Scalar(__VA_ARGS__);          \
  } while (0)
#else
#define ARDA_SIMD_DISPATCH(fn, ...) \
  return internal::fn##_Scalar(__VA_ARGS__)
#define ARDA_SIMD_DISPATCH_PROBE(fn, ...) \
  return internal::fn##_Scalar(__VA_ARGS__)
#endif

void Mix64Batch(const uint64_t* keys, size_t n, uint64_t* out) {
  ARDA_SIMD_DISPATCH(Mix64Batch, keys, n, out);
}

size_t Int64DictLookup(const uint64_t* table_hashes,
                       const uint32_t* table_ids,
                       const int64_t* dict_values, uint64_t mask,
                       const int64_t* keys, size_t n, uint32_t* out_ids,
                       uint32_t* walk_rows) {
  ARDA_SIMD_DISPATCH_PROBE(Int64DictLookup, table_hashes, table_ids,
                           dict_values, mask, keys, n, out_ids, walk_rows);
}

void TupleHashBatch(const uint32_t* ids, size_t num_cols, size_t stride,
                    size_t n, uint64_t* out) {
  ARDA_SIMD_DISPATCH(TupleHashBatch, ids, num_cols, stride, n, out);
}

size_t GroupLookup(const uint64_t* table_hashes, const uint32_t* table_ids,
                   const uint32_t* tuple_store, const uint32_t* ids,
                   size_t num_cols, size_t stride, uint64_t mask,
                   const uint64_t* hashes, size_t n, uint64_t* gids,
                   uint32_t* walk_rows) {
  ARDA_SIMD_DISPATCH_PROBE(GroupLookup, table_hashes, table_ids, tuple_store,
                           ids, num_cols, stride, mask, hashes, n, gids,
                           walk_rows);
}

void CountPerGroup(const uint64_t* gids, const uint8_t* valid, size_t n,
                   size_t* counts) {
  ARDA_SIMD_DISPATCH(CountPerGroup, gids, valid, n, counts);
}

void ScatterByGroup(const double* values, const uint8_t* valid,
                    const uint64_t* gids, size_t n, size_t* cursor,
                    double* out) {
  ARDA_SIMD_DISPATCH(ScatterByGroup, values, valid, gids, n, cursor, out);
}

void ClassSquares(const double* left_counts, const double* class_counts,
                  size_t num_classes, double* left_sq, double* right_sq) {
  ARDA_SIMD_DISPATCH(ClassSquares, left_counts, class_counts, num_classes,
                     left_sq, right_sq);
}

void GatherValsTargets(const double* col, const double* y,
                       const uint32_t* idx, size_t n, double* vals,
                       double* ys) {
  ARDA_SIMD_DISPATCH(GatherValsTargets, col, y, idx, n, vals, ys);
}

double SquaredDistance(const double* a, const double* b, size_t n) {
  ARDA_SIMD_DISPATCH(SquaredDistance, a, b, n);
}

void SquaredDistanceToMany(const double* query, const double* base,
                           size_t num_points, size_t dims, double* out) {
  ARDA_SIMD_DISPATCH(SquaredDistanceToMany, query, base, num_points, dims,
                     out);
}

void DecodeU64LeToDouble(const char* src, size_t n, double* dst) {
  ARDA_SIMD_DISPATCH(DecodeU64LeToDouble, src, n, dst);
}

void DecodeU64LeToInt64(const char* src, size_t n, int64_t* dst) {
  ARDA_SIMD_DISPATCH(DecodeU64LeToInt64, src, n, dst);
}

void ExpandValidityBitmap(const uint8_t* bitmap, size_t n, uint8_t* valid) {
  ARDA_SIMD_DISPATCH(ExpandValidityBitmap, bitmap, n, valid);
}

#undef ARDA_SIMD_DISPATCH
#undef ARDA_SIMD_DISPATCH_PROBE

}  // namespace arda::simd
