#ifndef ARDA_SIMD_ALIGNED_H_
#define ARDA_SIMD_ALIGNED_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace arda::simd {

/// Cache-line alignment used for hot columnar buffers so vector loads
/// never straddle a line and aligned stores are always legal.
inline constexpr size_t kAlign = 64;

/// Minimal 64-byte-aligned allocator for the hot numeric scratch buffers
/// (decision-tree feature columns, CSR group-by arrays). Interchangeable
/// with std::allocator from the container's point of view: only the
/// storage address changes, never the element values, so switching a
/// buffer to AlignedVector cannot affect results.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(size_t n) {
    if (n == 0) n = 1;
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(kAlign)));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t(kAlign));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept {
    return false;
  }
};

template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace arda::simd

#endif  // ARDA_SIMD_ALIGNED_H_
