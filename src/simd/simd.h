#ifndef ARDA_SIMD_SIMD_H_
#define ARDA_SIMD_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

/// \file
/// Runtime-dispatched SIMD kernels for the hot paths (see DESIGN.md "SIMD
/// dispatch"). Every kernel has a scalar reference implementation and an
/// AVX2 implementation compiled into a dedicated translation unit with
/// per-file `-mavx2`; the rest of the binary stays baseline x86-64, so one
/// artifact runs everywhere and the level is chosen once at runtime from
/// the CPU (overridable with `ARDA_SIMD=auto|avx2|scalar` or `--simd=`).
///
/// Determinism contract: for every kernel, the AVX2 path produces
/// bit-identical output to the scalar path on the kernel's input domain.
/// Integer kernels (hashing, table probes, bitmap expansion, gathers) are
/// exact by construction. Floating-point kernels either perform no
/// accumulation (gathers, decodes), accumulate values that are exactly
/// representable whole numbers so any association order yields the same
/// bits (ClassSquares), or pin one lane-structured accumulation order that
/// both paths implement (SquaredDistance). No kernel uses FMA: the AVX2
/// translation units are compiled with `-ffp-contract=off` so `a*b + c`
/// never fuses and always matches the scalar fallback.

namespace arda::simd {

/// Dispatch levels, ordered; higher levels require CPU support.
enum class SimdLevel : int {
  kScalar = 0,
  kAvx2 = 1,
};

/// True when the running CPU (and OS) support AVX2 and the binary was
/// built with the AVX2 translation unit.
bool Avx2Supported();

/// Reads `ARDA_SIMD` and pins the dispatch level from it. The environment
/// is consulted exactly once per process (std::once_flag) no matter how
/// often this runs; entry points call it from main() before any worker
/// thread starts so no thread ever races std::getenv. The resolved level
/// is **process-wide, not per-request** — a long-lived server cannot vary
/// it per client (use SetLevel/--simd before serving instead). Library
/// embedders that skip this call get the same once-only resolution lazily
/// on first kernel dispatch.
void InitFromEnvironment();

/// The level kernels dispatch on. Resolved once — by InitFromEnvironment
/// or lazily on first use — from the `ARDA_SIMD` environment variable
/// (`auto` or unset picks the highest supported level); later `SetLevel`
/// calls re-pin it.
SimdLevel ActiveLevel();

/// "scalar" or "avx2".
const char* LevelName(SimdLevel level);
const char* ActiveLevelName();

/// Pins the dispatch level. Returns false (and leaves the level alone)
/// when the requested level is not supported on this machine. An explicit
/// pin also pins the probe level (below) to the same value — "I asked for
/// avx2" means all kernels, including the probes.
bool SetLevel(SimdLevel level);

/// Parses `auto` / `avx2` / `scalar` and pins the level. `auto` picks the
/// highest supported level for the bulk kernels but keeps the dict-probe
/// kernels scalar (see ProbeLevel); explicit `scalar`/`avx2` pin every
/// kernel to that level. Returns false on an unknown spec or an
/// unsupported explicit level.
bool SetLevelFromSpec(std::string_view spec);

/// The level the open-addressing probe kernels (Int64DictLookup,
/// GroupLookup) dispatch on. Under `auto` this defaults to kScalar even
/// on AVX2 machines: the home-slot probe is load-latency-bound, and
/// out-of-order scalar loads beat AVX2 gathers there (the bench_kernels
/// `simd_hash_probe` pair measured ~0.8x for the AVX2 path — see
/// docs/benchmarks.md). Explicit `--simd=avx2` / `SetLevel(kAvx2)` /
/// `ARDA_SIMD=avx2` still select AVX2 probes; the determinism contract
/// holds either way.
SimdLevel ProbeLevel();

/// Pins the probe-kernel level independently of the bulk level (used by
/// bench A/B harnesses to save/restore the full dispatch state). Returns
/// false when the level is not supported on this machine.
bool SetProbeLevel(SimdLevel level);

/// Human-readable dispatch summary for reports and benchmarks: the plain
/// level name when every kernel shares one level ("scalar", "avx2"),
/// otherwise the bulk level annotated with the probe exception, e.g.
/// "avx2(probe=scalar)". This is what the `simd_level` report field and
/// the service ping carry.
std::string DispatchSummary();

/// Exports the resolved levels into the metrics registry: gauges
/// `simd.level` and `simd.probe_level` (numeric SimdLevel) and
/// `simd.avx2_supported` (0/1).
void PublishLevelMetrics();

// ---------------------------------------------------------------------------
// Kernel 1: batch hash + open-addressing table probe (KeyEncoder).
// ---------------------------------------------------------------------------

/// Sentinel id for "definite miss" from the table-probe kernels; matches
/// KeyEncoder::FlatTable::kEmpty.
inline constexpr uint32_t kIdMiss = ~0u;
/// Sentinel group id for misses; matches KeyEncoder::kMiss.
inline constexpr uint64_t kGroupMiss = ~0ull;

/// out[i] = splitmix64 finalizer of keys[i] (the KeyEncoder hash of a
/// native int64 key).
void Mix64Batch(const uint64_t* keys, size_t n, uint64_t* out);

/// Home-slot lookup of int64 keys against a KeyEncoder flat table
/// (`table_hashes` / `table_ids` of size mask+1, ids 1-based into
/// `dict_values`). For each key i:
///  - home slot empty            -> out_ids[i] = kIdMiss (definite miss)
///  - hash and stored value match -> out_ids[i] = the 1-based value id
///  - otherwise (collision)       -> i is appended to walk_rows; the
///    caller resolves it with the scalar probe walk.
/// Returns the number of entries written to walk_rows (capacity >= n).
size_t Int64DictLookup(const uint64_t* table_hashes,
                       const uint32_t* table_ids,
                       const int64_t* dict_values, uint64_t mask,
                       const int64_t* keys, size_t n, uint32_t* out_ids,
                       uint32_t* walk_rows);

/// FNV-1a over column-major value-id tuples followed by the splitmix64
/// finalizer (the KeyEncoder composite-key hash): for each row r,
/// out[r] = Mix64(fnv(ids[0*stride + r], ..., ids[(num_cols-1)*stride + r])).
void TupleHashBatch(const uint32_t* ids, size_t num_cols, size_t stride,
                    size_t n, uint64_t* out);

/// Home-slot lookup of composite keys against the KeyEncoder group table.
/// `ids` is the column-major tuple store being probed (stride `stride`),
/// `tuple_store` holds each group's tuple row-major (num_cols per group).
/// For each row i: empty home slot -> gids[i] = kGroupMiss; hash match
/// with verified tuple -> gids[i] = group id; otherwise i goes to
/// walk_rows. Returns the walk_rows count.
size_t GroupLookup(const uint64_t* table_hashes, const uint32_t* table_ids,
                   const uint32_t* tuple_store, const uint32_t* ids,
                   size_t num_cols, size_t stride, uint64_t mask,
                   const uint64_t* hashes, size_t n, uint64_t* gids,
                   uint32_t* walk_rows);

// ---------------------------------------------------------------------------
// Kernel 2: CSR group-by bucketing (GroupByAggregate).
// ---------------------------------------------------------------------------

/// counts[gids[r]] += 1 for every valid row. `valid` holds 0/1 bytes
/// (Column validity storage); nullptr means all rows are valid.
void CountPerGroup(const uint64_t* gids, const uint8_t* valid, size_t n,
                   size_t* counts);

/// CSR scatter: out[cursor[gids[r]]++] = values[r] for every valid row,
/// in ascending row order (the per-group value order GroupByAggregate's
/// ordered aggregates depend on). `valid` as in CountPerGroup.
void ScatterByGroup(const double* values, const uint8_t* valid,
                    const uint64_t* gids, size_t n, size_t* cursor,
                    double* out);

// ---------------------------------------------------------------------------
// Kernel 3: decision-tree split scan (DecisionTree).
// ---------------------------------------------------------------------------

/// left_sq = sum_c left_counts[c]^2 and right_sq = sum_c
/// (class_counts[c] - left_counts[c])^2, the Gini numerators of the
/// threshold scan. Inputs are class-count histograms: whole numbers, so
/// every partial sum is exactly representable and the vectorized
/// association order is bit-identical to the sequential one (callers
/// guard counts < 2^26 so squares stay below 2^53).
void ClassSquares(const double* left_counts, const double* class_counts,
                  size_t num_classes, double* left_sq, double* right_sq);

/// vals[i] = col[idx[i]], ys[i] = y[idx[i]] — the sorted-order gather of
/// one feature slice plus targets feeding the regression threshold scan.
void GatherValsTargets(const double* col, const double* y,
                       const uint32_t* idx, size_t n, double* vals,
                       double* ys);

// ---------------------------------------------------------------------------
// Kernel 4: squared Euclidean distance (KNN, geo join).
// ---------------------------------------------------------------------------

/// sum_i (a[i] - b[i])^2 with a pinned lane-structured accumulation
/// order: four independent running sums over the vectorizable prefix
/// (combined as (s0+s2) + (s1+s3)), then a sequential tail. Both dispatch
/// levels implement exactly this order, so results are bit-identical; for
/// n < 4 it degenerates to the plain sequential sum.
double SquaredDistance(const double* a, const double* b, size_t n);

/// out[p] = SquaredDistance(query, base + p*dims, dims) for each of the
/// `num_points` row-major rows of `base` — the KNN "one query against the
/// whole training set" loop. Per point the accumulation order is exactly
/// SquaredDistance's, so every out[p] is bit-identical to the pairwise
/// call at both dispatch levels; the AVX2 path gains by interleaving six
/// points (six independent addition chains) rather than by reordering
/// any per-point sum.
void SquaredDistanceToMany(const double* query, const double* base,
                           size_t num_points, size_t dims, double* out);

// ---------------------------------------------------------------------------
// Kernel 5: columnar decode (ReadColumnarString).
// ---------------------------------------------------------------------------

/// dst[i] = bit_cast<double>(little-endian u64 at src + 8*i).
void DecodeU64LeToDouble(const char* src, size_t n, double* dst);

/// dst[i] = static_cast<int64_t>(little-endian u64 at src + 8*i).
void DecodeU64LeToInt64(const char* src, size_t n, int64_t* dst);

/// valid[i] = bit i of `bitmap` (LSB-first within each byte), expanded to
/// the 0/1 byte-per-row Column validity layout.
void ExpandValidityBitmap(const uint8_t* bitmap, size_t n, uint8_t* valid);

}  // namespace arda::simd

#endif  // ARDA_SIMD_SIMD_H_
