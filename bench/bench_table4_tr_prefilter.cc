// Reproduces Table 4: using the Kumar et al. Tuple-Ratio decision rule as
// a table-prefiltering step before ARDA's feature selection — score
// change, speed-up, number of tables removed, and the per-dataset tuned
// threshold tau.

#include <cstdio>

#include "bench/bench_common.h"
#include "discovery/tuple_ratio.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace arda::bench {
namespace {

void RunScenario(const data::Scenario& scenario,
                 const BenchOptions& options) {
  core::ArdaConfig config = DefaultConfig(options);

  Stopwatch plain_watch;
  core::ArdaReport plain = RunArda(scenario, config);
  double plain_seconds = plain_watch.ElapsedSeconds();

  // Tune tau per dataset (the paper reports per-dataset optimized
  // thresholds): try a few values and keep the best filtered score.
  const double taus[] = {2.0, 5.0, 10.0, 24.0, 50.0};
  double best_score = -1e300;
  double best_tau = 0.0;
  double best_seconds = 0.0;
  size_t best_removed = 0;
  for (double tau : taus) {
    core::ArdaConfig filtered_config = config;
    filtered_config.use_tuple_ratio_prefilter = true;
    filtered_config.tuple_ratio_tau = tau;
    Stopwatch watch;
    core::ArdaReport filtered = RunArda(scenario, filtered_config);
    double seconds = watch.ElapsedSeconds();
    if (filtered.final_score > best_score) {
      best_score = filtered.final_score;
      best_tau = tau;
      best_seconds = seconds;
      best_removed = filtered.tables_filtered_by_tuple_ratio;
    }
  }

  PrintRow({scenario.name,
            StrFormat("%+.2f%%",
                      ImprovementPercent(plain.final_score, best_score)),
            StrFormat("%.2fx", best_seconds > 0.0
                                   ? plain_seconds / best_seconds
                                   : 0.0),
            StrFormat("%zu", best_removed), StrFormat("%.0f", best_tau)},
           16);
}

}  // namespace
}  // namespace arda::bench

int main(int argc, char** argv) {
  using namespace arda::bench;
  BenchOptions options = ParseOptions(argc, argv);
  std::printf("=== Table 4: Tuple-Ratio rule as a prefilter for ARDA "
              "(RIFS) ===\n");
  PrintRow({"dataset", "score_change", "speedup", "removed", "tau"}, 16);
  PrintRule(5, 16);
  for (const arda::data::Scenario& scenario :
       arda::data::MakeAllScenarios(options.seed, options.scale())) {
    RunScenario(scenario, options);
  }
  return 0;
}
