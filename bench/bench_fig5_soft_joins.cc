// Reproduces Figure 5: error achieved by the four time-series join
// techniques — two-way nearest neighbour, nearest neighbour, plain hard
// join, and time-resampled hard join — on the Pickup and Taxi scenarios
// across feature selectors.

#include <cstdio>

#include "bench/bench_common.h"
#include "util/string_util.h"

namespace arda::bench {
namespace {

struct JoinTechnique {
  const char* name;
  join::SoftJoinMethod method;
  bool time_resample;
};

constexpr JoinTechnique kTechniques[] = {
    {"2way_nearest", join::SoftJoinMethod::kTwoWayNearest, true},
    {"nearest", join::SoftJoinMethod::kNearest, true},
    {"hard", join::SoftJoinMethod::kHardExact, false},
    {"time_resampled", join::SoftJoinMethod::kHardExact, true},
};

void RunScenario(const data::Scenario& scenario,
                 const BenchOptions& options) {
  const std::vector<std::string> selectors = {
      "rifs",        "all_features",     "backward_selection",
      "f_test",      "forward_selection", "lasso",
      "mutual_info", "random_forest",    "relief",
      "rfe",         "sparse_regression"};

  std::printf("\n--- %s (MAE per join technique) ---\n",
              scenario.name.c_str());
  PrintRow({"method", "2way", "nearest", "hard", "resampled"}, 19);
  PrintRule(5, 19);

  for (const std::string& selector : selectors) {
    std::vector<std::string> cells = {selector};
    for (const JoinTechnique& technique : kTechniques) {
      core::ArdaConfig config = DefaultConfig(options);
      config.selector = selector;
      config.join.soft_method = technique.method;
      config.join.time_resample = technique.time_resample;
      core::ArdaReport report = RunArda(scenario, config);
      cells.push_back(StrFormat("%.3f", -report.final_score));
    }
    PrintRow(cells, 19);
  }
}

}  // namespace
}  // namespace arda::bench

int main(int argc, char** argv) {
  using namespace arda::bench;
  using namespace arda;
  BenchOptions options = ParseOptions(argc, argv);
  std::printf("=== Figure 5: soft-join techniques on time-series keys "
              "===\n");
  RunScenario(data::MakePickupScenario(options.seed, options.scale()),
              options);
  RunScenario(data::MakeTaxiScenario(options.seed, options.scale()),
              options);
  return 0;
}
