// Load generator for the augmentation service (PR 8): starts an
// in-process ArdaService (or connects to an external daemon with
// --port=N), fans out concurrent clients, and reports request latency
// percentiles and throughput. With --assert-identical it also enforces
// the byte-identity contract: every successful augment response must be
// byte-identical across clients, and the embedded `report_json` must
// equal the one-shot pipeline's DeterministicReportJson for the same
// request (or the bytes of --reference=FILE, e.g. an arda_cli
// --canonical-report file, for the cross-binary check the CI smoke lane
// runs).
//
// With --telemetry (in-process mode only) the full PR 9 telemetry
// surface is armed for the run — JSON request logging at info, a tiny
// slow-request threshold so every request records its per-stage
// breakdown, and a concurrent scraper thread doing the exact work a
// /metrics scrape does — which is how `tools/run_bench.sh
// --telemetry-overhead` measures the telemetry cost against a plain run
// (docs/observability.md; canonical record BENCH_PR9.json).
//
//   bench_service [--fast] [--json] [--clients=N] [--requests=N]
//                 [--port=N] [--data=DIR] [--base=T] [--target=C]
//                 [--seed=N] [--assert-identical] [--reference=FILE]
//                 [--telemetry]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/arda.h"
#include "core/options.h"
#include "core/report_io.h"
#include "discovery/repository.h"
#include "service/service.h"
#include "service/wire.h"
#include "telemetry/exposition.h"
#include "util/json.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace arda {
namespace {

namespace fs = std::filesystem;

struct Options {
  bool fast = false;
  bool json = false;
  bool assert_identical = false;
  bool telemetry = false;
  size_t clients = 4;
  size_t requests = 8;  // per client
  uint16_t port = 0;    // 0 = start an in-process server
  std::string data_dir;
  std::string reference;
  std::string base = "sales";
  std::string target = "y";
  uint64_t seed = 42;
};

Options ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* flag) -> const char* {
      std::string prefix = std::string(flag) + "=";
      if (StartsWith(arg, prefix)) return arg.c_str() + prefix.size();
      return nullptr;
    };
    int64_t n = 0;
    if (arg == "--fast") {
      options.fast = true;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--assert-identical") {
      options.assert_identical = true;
    } else if (arg == "--telemetry") {
      options.telemetry = true;
    } else if (const char* v = value_of("--clients")) {
      if (ParseInt64(v, &n) && n > 0) options.clients = (size_t)n;
    } else if (const char* v = value_of("--requests")) {
      if (ParseInt64(v, &n) && n > 0) options.requests = (size_t)n;
    } else if (const char* v = value_of("--port")) {
      if (ParseInt64(v, &n) && n > 0 && n <= 65535)
        options.port = (uint16_t)n;
    } else if (const char* v = value_of("--data")) {
      options.data_dir = v;
    } else if (const char* v = value_of("--reference")) {
      options.reference = v;
    } else if (const char* v = value_of("--base")) {
      options.base = v;
    } else if (const char* v = value_of("--target")) {
      options.target = v;
    } else if (const char* v = value_of("--seed")) {
      if (ParseInt64(v, &n)) options.seed = (uint64_t)n;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  if (options.fast) {
    options.clients = std::min<size_t>(options.clients, 2);
    options.requests = std::min<size_t>(options.requests, 3);
  }
  return options;
}

// Writes the small synthetic repository the bench serves when no --data
// directory is given: a base table whose target depends on a column
// hidden in a lookup table, plus a noise table.
std::string WriteBenchData() {
  fs::path dir = fs::temp_directory_path() / "arda_bench_service_data";
  fs::remove_all(dir);
  fs::create_directories(dir);
  Rng rng(3);
  std::string base_csv = "id,x,y\n";
  std::string lookup_csv = "id,hidden\n";
  std::string noise_csv = "id,n1,n2\n";
  for (int i = 0; i < 200; ++i) {
    double hidden = rng.Normal();
    double x = rng.Normal();
    base_csv += StrFormat("%d,%.6f,%.6f\n", i, x,
                          x + 3.0 * hidden + rng.Normal(0.0, 0.1));
    lookup_csv += StrFormat("%d,%.6f\n", i, hidden);
    noise_csv += StrFormat("%d,%.6f,%.6f\n", i, rng.Normal(), rng.Normal());
  }
  std::ofstream(dir / "sales.csv") << base_csv;
  std::ofstream(dir / "lookup.csv") << lookup_csv;
  std::ofstream(dir / "noise.csv") << noise_csv;
  return dir.string();
}

std::string AugmentRequest(const Options& options) {
  std::map<std::string, json::Value> members;
  members.emplace("type", json::Value::MakeString("augment"));
  members.emplace("base", json::Value::MakeString(options.base));
  members.emplace("target", json::Value::MakeString(options.target));
  members.emplace("seed",
                  json::Value::MakeInt((int64_t)options.seed));
  return json::Serialize(json::Value::MakeObject(std::move(members)));
}

// The one-shot (CLI-equivalent) pipeline run used as the in-process
// byte-identity reference.
Result<std::string> ReferenceReport(const Options& options) {
  discovery::DataRepository repo;
  discovery::LoadStats stats;
  ARDA_RETURN_IF_ERROR(repo.LoadDirectory(options.data_dir, "", {}, &stats));
  core::RunOptions run_options;
  run_options.seed = options.seed;
  ARDA_ASSIGN_OR_RETURN(core::ArdaConfig config,
                        core::MakeArdaConfig(run_options));
  ARDA_ASSIGN_OR_RETURN(const df::DataFrame* base,
                        repo.Get(options.base));
  core::AugmentationTask task;
  task.base = *base;
  task.target_column = options.target;
  task.repo = &repo;
  task.base_table_name = options.base;
  for (const discovery::IngestSkip& fallback : stats.fallbacks) {
    task.ingest_skips.push_back({fallback.table, "ingest",
                                 fallback.reason});
  }
  core::Arda arda(config);
  ARDA_ASSIGN_OR_RETURN(core::ArdaReport report, arda.Run(task));
  return core::DeterministicReportJson(report);
}

struct ClientResult {
  std::vector<double> latencies_seconds;
  std::vector<std::string> responses;  // successful augment payloads
  size_t overloaded = 0;
  size_t errors = 0;
  Status status;  // first transport failure
};

void RunClient(uint16_t port, const std::string& request, size_t requests,
               ClientResult* out) {
  Result<service::ServiceClient> client =
      service::ServiceClient::Connect(port);
  if (!client.ok()) {
    out->status = client.status();
    return;
  }
  for (size_t i = 0; i < requests; ++i) {
    Stopwatch watch;
    Result<std::string> response = client->RoundTrip(request);
    if (!response.ok()) {
      out->status = response.status();
      return;
    }
    out->latencies_seconds.push_back(watch.ElapsedSeconds());
    Result<json::Value> parsed = json::Parse(*response);
    const std::string status =
        parsed.ok() ? parsed->StringOr("status", "") : "";
    if (status == "ok") {
      out->responses.push_back(std::move(response).value());
    } else if (status == "overloaded") {
      ++out->overloaded;
    } else {
      ++out->errors;
    }
  }
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t index = std::min(
      sorted.size() - 1,
      (size_t)((double)(sorted.size() - 1) * p + 0.5));
  return sorted[index];
}

int Run(int argc, char** argv) {
  Options options = ParseArgs(argc, argv);
  const bool in_process = options.port == 0;
  if (options.data_dir.empty()) {
    if (!in_process) {
      std::fprintf(stderr, "--port requires --data (for the reference "
                           "run)\n");
      return 2;
    }
    options.data_dir = WriteBenchData();
  }

  if (options.telemetry && !in_process) {
    std::fprintf(stderr, "--telemetry requires the in-process server "
                         "(a daemon's telemetry lives in its own "
                         "process)\n");
    return 2;
  }

  service::ServiceConfig config;
  config.data_dir = options.data_dir;
  config.max_queue_depth = std::max<size_t>(options.clients, 8);
  if (options.telemetry) {
    // Worst-case telemetry load: every request passes the slow-request
    // threshold and logs its full per-stage breakdown as JSON.
    config.slow_request_ms = 1e-6;
    log::SetLevel(log::Level::kInfo);
    log::SetFormat(log::Format::kJson);
  }
  service::ArdaService server(config);
  uint16_t port = options.port;
  if (in_process) {
    Status started = server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    port = server.port();
  }

  // Concurrent scraper: does the exact work one GET /metrics does
  // (publish the derived gauges, render the exposition document) every
  // 10 ms for the whole load window, like a very aggressive Prometheus.
  std::atomic<bool> stop_scraper{false};
  std::atomic<uint64_t> scrapes{0};
  std::atomic<uint64_t> scrape_bytes{0};
  std::thread scraper;
  if (options.telemetry) {
    scraper = std::thread([&] {
      while (!stop_scraper.load(std::memory_order_relaxed)) {
        server.PublishTelemetryGauges();
        const std::string body = telemetry::RenderPrometheus(
            metrics::GlobalRegistry().Snapshot());
        scrapes.fetch_add(1, std::memory_order_relaxed);
        scrape_bytes.fetch_add(body.size(), std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
  }

  const std::string request = AugmentRequest(options);
  std::vector<ClientResult> results(options.clients);
  Stopwatch wall;
  std::vector<std::thread> clients;
  clients.reserve(options.clients);
  for (size_t c = 0; c < options.clients; ++c) {
    clients.emplace_back(RunClient, port, request, options.requests,
                         &results[c]);
  }
  for (std::thread& t : clients) t.join();
  const double wall_seconds = wall.ElapsedSeconds();
  if (scraper.joinable()) {
    stop_scraper.store(true, std::memory_order_relaxed);
    scraper.join();
  }
  if (in_process) {
    server.BeginShutdown();
    server.Wait();
  }

  std::vector<double> latencies;
  std::vector<const std::string*> responses;
  size_t overloaded = 0, errors = 0;
  for (const ClientResult& result : results) {
    if (!result.status.ok()) {
      std::fprintf(stderr, "client failed: %s\n",
                   result.status.ToString().c_str());
      return 1;
    }
    latencies.insert(latencies.end(), result.latencies_seconds.begin(),
                     result.latencies_seconds.end());
    for (const std::string& response : result.responses) {
      responses.push_back(&response);
    }
    overloaded += result.overloaded;
    errors += result.errors;
  }
  std::sort(latencies.begin(), latencies.end());

  bool identical = true;
  std::string identity_error;
  if (options.assert_identical) {
    if (responses.empty()) {
      identical = false;
      identity_error = "no successful responses to compare";
    }
    for (const std::string* response : responses) {
      if (*response != *responses.front()) {
        identical = false;
        identity_error = "responses differ across clients";
        break;
      }
    }
    if (identical && !responses.empty()) {
      // Compare the embedded deterministic report against the reference:
      // --reference file bytes (cross-binary, e.g. arda_cli
      // --canonical-report) or an in-process one-shot pipeline run.
      Result<json::Value> parsed = json::Parse(*responses.front());
      const json::Value* report =
          parsed.ok() ? parsed->Find("report_json") : nullptr;
      if (report == nullptr || !report->is_string()) {
        identical = false;
        identity_error = "response lacks report_json";
      } else {
        std::string expected;
        if (!options.reference.empty()) {
          std::ifstream in(options.reference);
          std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
          expected = std::move(bytes);
        } else {
          Result<std::string> reference = ReferenceReport(options);
          if (!reference.ok()) {
            std::fprintf(stderr, "reference run failed: %s\n",
                         reference.status().ToString().c_str());
            return 1;
          }
          expected = std::move(reference).value();
        }
        if (report->AsString() != expected) {
          identical = false;
          identity_error =
              "service report_json differs from the one-shot report";
        }
      }
    }
  }

  const size_t total = latencies.size();
  const double qps = wall_seconds > 0.0 ? (double)total / wall_seconds : 0.0;
  const double p50_ms = Percentile(latencies, 0.50) * 1e3;
  const double p99_ms = Percentile(latencies, 0.99) * 1e3;
  if (options.json) {
    std::printf("{\n");
    std::printf("  \"bench\": \"service\",\n");
    std::printf("  \"clients\": %zu,\n", options.clients);
    std::printf("  \"requests_per_client\": %zu,\n", options.requests);
    std::printf("  \"requests_total\": %zu,\n", total);
    std::printf("  \"ok_responses\": %zu,\n", responses.size());
    std::printf("  \"overloaded\": %zu,\n", overloaded);
    std::printf("  \"errors\": %zu,\n", errors);
    std::printf("  \"wall_seconds\": %.6f,\n", wall_seconds);
    std::printf("  \"qps\": %.2f,\n", qps);
    std::printf("  \"p50_ms\": %.3f,\n", p50_ms);
    std::printf("  \"p99_ms\": %.3f,\n", p99_ms);
    std::printf("  \"assert_identical\": %s,\n",
                options.assert_identical ? "true" : "false");
    std::printf("  \"telemetry\": %s,\n",
                options.telemetry ? "true" : "false");
    std::printf("  \"scrapes\": %llu,\n",
                (unsigned long long)scrapes.load());
    std::printf("  \"scrape_bytes\": %llu,\n",
                (unsigned long long)scrape_bytes.load());
    std::printf("  \"identical\": %s\n", identical ? "true" : "false");
    std::printf("}\n");
  } else {
    std::printf("service bench: %zu clients x %zu requests\n",
                options.clients, options.requests);
    std::printf("  ok %zu, overloaded %zu, errors %zu\n",
                responses.size(), overloaded, errors);
    std::printf("  wall %.3fs, qps %.2f, p50 %.3fms, p99 %.3fms\n",
                wall_seconds, qps, p50_ms, p99_ms);
    if (options.telemetry) {
      std::printf("  telemetry on: %llu scrapes, %llu exposition bytes\n",
                  (unsigned long long)scrapes.load(),
                  (unsigned long long)scrape_bytes.load());
    }
    if (options.assert_identical) {
      std::printf("  byte-identity: %s\n",
                  identical ? "ok" : identity_error.c_str());
    }
  }
  if (options.assert_identical && !identical) {
    std::fprintf(stderr, "byte-identity violated: %s\n",
                 identity_error.c_str());
    return 1;
  }
  if (errors > 0) {
    std::fprintf(stderr, "%zu request(s) returned errors\n", errors);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace arda

int main(int argc, char** argv) { return arda::Run(argc, argv); }
