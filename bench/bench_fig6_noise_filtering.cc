// Reproduces Figure 6: how much planted synthetic noise each feature
// selector lets through on the micro-benchmarks — number of features
// selected and the fraction that are original (non-noise) features — plus
// the RIFS noise-source ablation called out in DESIGN.md.

#include <cstdio>

#include "bench/bench_common.h"
#include "util/string_util.h"

namespace arda::bench {
namespace {

struct FilterRow {
  size_t selected = 0;
  size_t original = 0;
  double score = 0.0;
};

FilterRow RunSelector(const data::MicroBenchmark& bench,
                      featsel::FeatureSelector* selector, uint64_t seed) {
  ml::Evaluator evaluator(bench.data, 0.25, seed);
  Rng rng(seed ^ 0xF16ULL);
  featsel::SelectionResult result =
      selector->Select(bench.data, evaluator, &rng);
  FilterRow row;
  row.selected = result.selected.size();
  for (size_t f : result.selected) {
    row.original += !bench.IsNoiseFeature(f);
  }
  row.score = result.score;
  return row;
}

void RunBenchmark(const data::MicroBenchmark& bench,
                  const BenchOptions& options) {
  std::printf("\n--- %s: %zu original + %zu noise features ---\n",
              bench.name.c_str(), bench.num_original,
              bench.data.NumFeatures() - bench.num_original);
  PrintRow({"method", "selected", "original", "orig_frac", "accuracy"},
           19);
  PrintRule(5, 19);
  const std::vector<std::string> methods = {
      "rifs",        "random_forest", "sparse_regression",
      "f_test",      "mutual_info",   "relief",
      "linear_svc",  "logistic_reg",  "forward_selection",
      "rfe",         "all_features"};
  for (const std::string& method : methods) {
    std::unique_ptr<featsel::FeatureSelector> selector =
        featsel::MakeSelector(method);
    FilterRow row = RunSelector(bench, selector.get(), options.seed);
    PrintRow({method, StrFormat("%zu", row.selected),
              StrFormat("%zu", row.original),
              StrFormat("%.2f", row.selected == 0
                                    ? 0.0
                                    : static_cast<double>(row.original) /
                                          static_cast<double>(row.selected)),
              StrFormat("%.1f%%", row.score * 100.0)},
             19);
  }

  // Ablation: RIFS noise source (simple distributions vs moment matching,
  // with and without the row permutation).
  std::printf("RIFS noise-source ablation:\n");
  struct Variant {
    const char* name;
    featsel::NoiseKind kind;
    bool permute;
  };
  const Variant variants[] = {
      {"rifs(moment_matched)", featsel::NoiseKind::kMomentMatched, true},
      {"rifs(moment_raw)", featsel::NoiseKind::kMomentMatched, false},
      {"rifs(gaussian)", featsel::NoiseKind::kGaussian, true},
      {"rifs(uniform)", featsel::NoiseKind::kUniform, true},
      {"rifs(bernoulli)", featsel::NoiseKind::kBernoulli, true},
  };
  for (const Variant& variant : variants) {
    featsel::RifsConfig config;
    config.num_rounds = options.rifs_rounds();
    config.noise = variant.kind;
    config.permute_moment_noise = variant.permute;
    std::unique_ptr<featsel::FeatureSelector> selector =
        featsel::MakeRifsSelector(config, variant.name);
    FilterRow row = RunSelector(bench, selector.get(), options.seed);
    PrintRow({variant.name, StrFormat("%zu", row.selected),
              StrFormat("%zu", row.original),
              StrFormat("%.2f", row.selected == 0
                                    ? 0.0
                                    : static_cast<double>(row.original) /
                                          static_cast<double>(row.selected)),
              StrFormat("%.1f%%", row.score * 100.0)},
             19);
  }
}

}  // namespace
}  // namespace arda::bench

int main(int argc, char** argv) {
  using namespace arda::bench;
  using namespace arda;
  BenchOptions options = ParseOptions(argc, argv);
  std::printf("=== Figure 6: synthetic-noise filtering on micro "
              "benchmarks ===\n");
  double multiplier = options.fast ? 2.0 : 10.0;
  RunBenchmark(data::MakeKrakenBenchmark(options.seed, multiplier),
               options);
  RunBenchmark(data::MakeDigitsBenchmark(options.seed, multiplier),
               options);
  return 0;
}
