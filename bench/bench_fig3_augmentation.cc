// Reproduces Figure 3: achieved augmentation (% improvement over the base
// table score under the default estimator) and wall-clock time for ARDA
// (RIFS), all-tables/no-selection, the Tuple-Ratio rule as a stand-alone
// filter, and the AutoML baselines, across the five scenarios.

#include <cstdio>

#include "bench/bench_common.h"
#include "discovery/tuple_ratio.h"
#include "ml/automl.h"
#include "ml/evaluator.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace arda::bench {
namespace {

void RunScenario(const data::Scenario& scenario,
                 const BenchOptions& options) {
  core::ArdaConfig config = DefaultConfig(options);
  Rng rng(options.seed);

  ml::Dataset base_data = BaseDataset(scenario, config);
  ml::Evaluator base_eval(base_data, config.test_fraction, config.seed);
  double base_score = base_eval.FinalScore(
      ml::AllFeatureIndices(base_data.NumFeatures()));

  auto report_row = [&](const std::string& method, double score,
                        double seconds) {
    PrintRow({scenario.name, method,
              StrFormat("%.2f", DisplayMetric(scenario.task, score)),
              StrFormat("%+.1f%%", ImprovementPercent(base_score, score)),
              StrFormat("%.1fs", seconds)});
  };

  report_row("base_table", base_score, 0.0);

  {
    Stopwatch watch;
    core::ArdaReport report = RunArda(scenario, config);
    report_row("ARDA (RIFS)", report.final_score, watch.ElapsedSeconds());
  }
  ml::Dataset all_data;
  {
    Stopwatch watch;
    all_data = MaterializeAll(scenario, config, &rng);
    ml::Evaluator evaluator(all_data, config.test_fraction, config.seed);
    double score =
        evaluator.FinalScore(ml::AllFeatureIndices(all_data.NumFeatures()));
    report_row("all_tables", score, watch.ElapsedSeconds());
  }
  {
    // TR rule stand-alone: keep only candidates passing the rule, then
    // train on everything kept with no feature selection.
    Stopwatch watch;
    discovery::TupleRatioFilterResult filtered =
        discovery::FilterByTupleRatio(scenario.repo, scenario.base,
                                      scenario.candidates,
                                      config.tuple_ratio_tau);
    data::Scenario kept = scenario;
    kept.candidates = filtered.kept;
    ml::Dataset tr_data = MaterializeAll(kept, config, &rng);
    ml::Evaluator evaluator(tr_data, config.test_fraction, config.seed);
    double score =
        evaluator.FinalScore(ml::AllFeatureIndices(tr_data.NumFeatures()));
    report_row("TR_rule", score, watch.ElapsedSeconds());
  }
  {
    ml::AutoMlConfig automl;
    automl.time_budget_seconds = options.automl_budget_seconds();
    automl.seed = options.seed;
    ml::AutoMlResult result = ml::RunRandomSearchAutoMl(base_data, automl);
    report_row("AutoML(base)", result.best_score, result.elapsed_seconds);
    result = ml::RunRandomSearchAutoMl(all_data, automl);
    report_row("AutoML(all)", result.best_score, result.elapsed_seconds);
  }
  PrintRule(5);
}

}  // namespace
}  // namespace arda::bench

int main(int argc, char** argv) {
  using namespace arda::bench;
  BenchOptions options = ParseOptions(argc, argv);
  std::printf(
      "=== Figure 3: achieved augmentation (%% improvement over base) "
      "===\n");
  std::printf("score column: accuracy %% (classification) / MAE "
              "(regression)\n\n");
  PrintRow({"dataset", "method", "score", "improvement", "time"});
  PrintRule(5);
  for (const arda::data::Scenario& scenario :
       arda::data::MakeAllScenarios(options.seed, options.scale())) {
    RunScenario(scenario, options);
  }
  return 0;
}
