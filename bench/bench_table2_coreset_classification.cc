// Reproduces Table 2: accuracy change of stratified sampling and of
// CountSketch row sketching over uniform sampling, for classification
// datasets (School S, Digits, Kraken) across feature-selection methods.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "bench/bench_common.h"
#include "coreset/coreset.h"
#include "util/string_util.h"

namespace arda::bench {
namespace {

// Uniform / stratified row subsample of a dataset.
ml::Dataset SubsampleRows(const ml::Dataset& data, size_t m,
                          bool stratified, Rng* rng) {
  if (m >= data.NumRows()) return data;
  std::vector<size_t> chosen;
  if (stratified) {
    std::map<int, std::vector<size_t>> groups;
    for (size_t r = 0; r < data.NumRows(); ++r) {
      groups[static_cast<int>(std::lround(data.y[r]))].push_back(r);
    }
    for (auto& [label, rows] : groups) {
      size_t want = std::max<size_t>(
          1, static_cast<size_t>(std::lround(
                 static_cast<double>(m) * static_cast<double>(rows.size()) /
                 static_cast<double>(data.NumRows()))));
      want = std::min(want, rows.size());
      for (size_t p : rng->SampleWithoutReplacement(rows.size(), want)) {
        chosen.push_back(rows[p]);
      }
    }
  } else {
    chosen = rng->SampleWithoutReplacement(data.NumRows(), m);
  }
  std::sort(chosen.begin(), chosen.end());
  return data.SelectRows(chosen);
}

double SelectorScore(const ml::Dataset& data, const std::string& method,
                     uint64_t seed) {
  std::unique_ptr<featsel::FeatureSelector> selector =
      featsel::MakeSelector(method);
  ARDA_CHECK(selector != nullptr);
  ml::Evaluator evaluator(data, 0.25, seed);
  Rng rng(seed ^ 0xC0DEULL);
  return selector->Select(data, evaluator, &rng).score;
}

void RunDataset(const std::string& name, const ml::Dataset& full,
                const BenchOptions& options) {
  const size_t m = full.NumRows() / 2;
  Rng rng(options.seed);
  ml::Dataset uniform = SubsampleRows(full, m, /*stratified=*/false, &rng);
  ml::Dataset stratified = SubsampleRows(full, m, /*stratified=*/true, &rng);
  ml::Dataset sketched = coreset::SketchRows(full, m, &rng);

  const std::vector<std::string> methods = {
      "f_test",       "mutual_info", "random_forest",
      "sparse_regression", "all_features", "rifs",
      "forward_selection", "linear_svc",   "relief"};
  std::printf("\n--- %s (%zu rows -> coresets of ~%zu) ---\n", name.c_str(),
              full.NumRows(), m);
  PrintRow({"method", "stratified", "sketch"}, 20);
  PrintRule(3, 20);
  for (const std::string& method : methods) {
    double u = SelectorScore(uniform, method, options.seed);
    double s = SelectorScore(stratified, method, options.seed);
    double k = SelectorScore(sketched, method, options.seed);
    PrintRow({method, StrFormat("%+.2f%%", (s - u) * 100.0),
              StrFormat("%+.2f%%", (k - u) * 100.0)},
             20);
  }
}

}  // namespace
}  // namespace arda::bench

int main(int argc, char** argv) {
  using namespace arda::bench;
  using namespace arda;
  BenchOptions options = ParseOptions(argc, argv);
  std::printf("=== Table 2: coreset strategies vs uniform sampling "
              "(classification; accuracy change) ===\n");

  {
    data::Scenario school =
        data::MakeSchoolScenario(false, options.seed, options.scale());
    core::ArdaConfig config = DefaultConfig(options);
    Rng rng(options.seed);
    ml::Dataset data = MaterializeAll(school, config, &rng);
    RunDataset("school_s", data, options);
  }
  {
    data::MicroBenchmark digits = data::MakeDigitsBenchmark(
        options.seed, options.fast ? 2.0 : 10.0);
    RunDataset("digits", digits.data, options);
  }
  {
    data::MicroBenchmark kraken = data::MakeKrakenBenchmark(
        options.seed, options.fast ? 2.0 : 10.0);
    RunDataset("kraken", kraken.data, options);
  }
  return 0;
}
