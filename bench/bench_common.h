#ifndef ARDA_BENCH_BENCH_COMMON_H_
#define ARDA_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "core/arda.h"
#include "data/generators.h"
#include "featsel/selector.h"

namespace arda::bench {

/// Shared knobs for the experiment harnesses. `--fast` shrinks scenarios
/// and round counts so a full sweep finishes in seconds while preserving
/// the qualitative ordering; default settings mirror the paper's setup at
/// laptop scale.
struct BenchOptions {
  bool fast = false;
  /// `--json`: emit machine-readable timings instead of the text table
  /// (consumed by tools/run_bench.sh; see docs/benchmarks.md).
  bool json = false;
  uint64_t seed = 17;

  data::ScenarioScale scale() const {
    return fast ? data::ScenarioScale::kSmall : data::ScenarioScale::kFull;
  }
  size_t rifs_rounds() const { return fast ? 4 : 10; }
  double automl_budget_seconds() const { return fast ? 1.0 : 5.0; }
};

/// Parses --fast / --seed=N from argv.
BenchOptions ParseOptions(int argc, char** argv);

/// Default ARDA configuration used across experiments (budget join,
/// RIFS with `rounds` injection rounds).
core::ArdaConfig DefaultConfig(const BenchOptions& options);

/// Runs the ARDA pipeline on a scenario with the given selector name and
/// returns the report (aborts on configuration errors — these are
/// programmer mistakes in the bench).
core::ArdaReport RunArda(const data::Scenario& scenario,
                         const core::ArdaConfig& config);

/// Joins ALL candidate tables of the scenario into one frame (full
/// materialization), imputes, and returns the encoded dataset — the
/// "all features / no selection" baseline of Figures 3-4 and Table 1.
ml::Dataset MaterializeAll(const data::Scenario& scenario,
                           const core::ArdaConfig& config, Rng* rng);

/// Builds the base-table-only dataset for a scenario.
ml::Dataset BaseDataset(const data::Scenario& scenario,
                        const core::ArdaConfig& config);

/// Percent improvement of `score` over `base` under higher-is-better
/// scores (regression scores are negative MAE, so this reads as % error
/// reduction).
double ImprovementPercent(double base, double score);

/// Converts a higher-is-better score to the paper's display metric:
/// accuracy % for classification, MAE for regression.
double DisplayMetric(ml::TaskType task, double score);

/// One row of a per-selector sweep (Table 1 / Figure 4).
struct SelectorRunRow {
  std::string method;
  /// Final-estimator holdout score of the ARDA run with this selector.
  double score = 0.0;
  /// Feature-selection + evaluation seconds (the paper's time column).
  double seconds = 0.0;
  /// % improvement over the base-table score.
  double improvement = 0.0;
};

/// Runs the full ARDA pipeline once per selector name and returns one row
/// per method, plus the base score via `base_score_out`.
std::vector<SelectorRunRow> RunSelectorSweep(
    const data::Scenario& scenario, const BenchOptions& options,
    const std::vector<std::string>& selectors, double* base_score_out);

/// Left-pads/truncates for aligned table output.
std::string Pad(const std::string& text, size_t width);

/// Prints a row of fixed-width cells.
void PrintRow(const std::vector<std::string>& cells, size_t width = 14);

/// Prints a separator line sized to `columns` cells.
void PrintRule(size_t columns, size_t width = 14);

}  // namespace arda::bench

#endif  // ARDA_BENCH_BENCH_COMMON_H_
