// Reproduces Figure 4: % improvement over the base-table score vs feature-
// selection time for every selector on every scenario (a score/time series
// per method; the paper plots these, we print the coordinates).

#include <cstdio>

#include "bench/bench_common.h"
#include "ml/evaluator.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace arda::bench {
namespace {

void RunScenario(const data::Scenario& scenario,
                 const BenchOptions& options) {
  std::printf("\n--- %s ---\n", scenario.name.c_str());
  PrintRow({"method", "time_s", "improvement%"}, 22);
  PrintRule(3, 22);

  double base_score = 0.0;
  std::vector<std::string> selectors =
      featsel::PaperSelectorNames(scenario.task);
  selectors.push_back("all_features");
  std::vector<SelectorRunRow> rows =
      RunSelectorSweep(scenario, options, selectors, &base_score);

  // Sort by time so the printed series reads like the plot's x axis.
  std::sort(rows.begin(), rows.end(),
            [](const SelectorRunRow& a, const SelectorRunRow& b) {
              return a.seconds < b.seconds;
            });
  for (const SelectorRunRow& row : rows) {
    PrintRow({row.method, StrFormat("%.2f", row.seconds),
              StrFormat("%+.1f", row.improvement)}, 22);
  }

  // Identify the winner, paper-style narration.
  const SelectorRunRow* best = &rows.front();
  for (const SelectorRunRow& row : rows) {
    if (row.improvement > best->improvement) best = &row;
  }
  std::printf("best: %s (%+.1f%%)\n", best->method.c_str(),
              best->improvement);
}

}  // namespace
}  // namespace arda::bench

int main(int argc, char** argv) {
  using namespace arda::bench;
  BenchOptions options = ParseOptions(argc, argv);
  std::printf("=== Figure 4: score vs feature-selection time ===\n");
  for (const arda::data::Scenario& scenario :
       arda::data::MakeAllScenarios(options.seed, options.scale())) {
    RunScenario(scenario, options);
  }
  return 0;
}
