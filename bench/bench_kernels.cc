// Hot-path kernel benchmarks: single-thread decision-tree fitting on the
// Table-6 micro config (digits + 10x injected noise) and composite-key
// hash-join / group-by row throughput. These are the two kernels every
// ARDA layer bottoms out in (forest ranking, RIFS, join execution), so
// their single-thread cost gates the whole pipeline.
//
// Timings are emitted either as an aligned table or, with --json, as a
// machine-readable record that tools/run_bench.sh archives into
// BENCH_*.json trajectory files (see docs/benchmarks.md).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include <cstring>

#if defined(__linux__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "bench/bench_common.h"
#include "data/generators.h"
#include "dataframe/aggregate.h"
#include "dataframe/columnar_io.h"
#include "dataframe/csv.h"
#include "dataframe/key_encoder.h"
#include "dataframe/mapped_columnar.h"
#include "discovery/discovery.h"
#include "discovery/repository.h"
#include "join/join_executor.h"
#include "ml/decision_tree.h"
#include "ml/random_forest.h"
#include "simd/aligned.h"
#include "simd/simd.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace arda::bench {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct KernelResult {
  std::string name;
  double seconds = 0.0;        // best-of-N wall time for one repetition
  double items_per_second = 0.0;
  uint64_t checksum = 0;       // output fingerprint (guards dead-code elim)
};

// Runs `fn` (returning a checksum) `reps` times and keeps the best time.
template <typename Fn>
KernelResult Measure(const std::string& name, size_t items, size_t reps,
                     Fn&& fn) {
  KernelResult result;
  result.name = name;
  result.seconds = 1e300;
  for (size_t i = 0; i < reps; ++i) {
    double start = NowSeconds();
    result.checksum = fn();
    double elapsed = NowSeconds() - start;
    if (elapsed < result.seconds) result.seconds = elapsed;
  }
  if (result.seconds > 0.0) {
    result.items_per_second = static_cast<double>(items) / result.seconds;
  }
  return result;
}

df::DataFrame MakeJoinTable(size_t rows, size_t key_space, size_t values,
                            uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> ids(rows);
  std::vector<std::string> cities(rows);
  static const char* kCities[] = {"boston", "cambridge", "somerville",
                                  "medford", "quincy", "newton",
                                  "brookline", "waltham"};
  for (size_t i = 0; i < rows; ++i) {
    ids[i] = static_cast<int64_t>(rng.UniformUint64(key_space));
    cities[i] = kCities[rng.UniformUint64(8)];
  }
  df::DataFrame table;
  ARDA_CHECK(table.AddColumn(df::Column::Int64("id", std::move(ids))).ok());
  ARDA_CHECK(
      table.AddColumn(df::Column::String("city", std::move(cities))).ok());
  for (size_t c = 0; c < values; ++c) {
    std::vector<double> col(rows);
    for (double& x : col) x = rng.Normal();
    ARDA_CHECK(
        table.AddColumn(df::Column::Double("v" + std::to_string(c), col))
            .ok());
  }
  return table;
}

// Mixed-type table shaped like real ingest input: int64 ids, doubles,
// low-cardinality strings, and ~5% nulls in every non-key column.
df::DataFrame MakeMixedTable(size_t rows, uint64_t seed) {
  Rng rng(seed);
  static const char* kCities[] = {"boston", "cambridge", "somerville",
                                  "medford", "quincy", "newton",
                                  "brookline", "waltham"};
  df::Column id = df::Column::Empty("id", df::DataType::kInt64);
  df::Column value = df::Column::Empty("value", df::DataType::kDouble);
  df::Column count = df::Column::Empty("count", df::DataType::kInt64);
  df::Column city = df::Column::Empty("city", df::DataType::kString);
  for (size_t r = 0; r < rows; ++r) {
    id.AppendInt64(static_cast<int64_t>(r));
    if (rng.UniformUint64(20) == 0) {
      value.AppendNull();
    } else {
      value.AppendDouble(rng.Normal());
    }
    if (rng.UniformUint64(20) == 0) {
      count.AppendNull();
    } else {
      count.AppendInt64(static_cast<int64_t>(rng.UniformUint64(1000)));
    }
    if (rng.UniformUint64(20) == 0) {
      city.AppendNull();
    } else {
      city.AppendString(kCities[rng.UniformUint64(8)]);
    }
  }
  df::DataFrame table;
  ARDA_CHECK(table.AddColumn(std::move(id)).ok());
  ARDA_CHECK(table.AddColumn(std::move(value)).ok());
  ARDA_CHECK(table.AddColumn(std::move(count)).ok());
  ARDA_CHECK(table.AddColumn(std::move(city)).ok());
  return table;
}

uint64_t HashFrame(const df::DataFrame& frame) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t c = 0; c < frame.NumCols(); ++c) {
    const df::Column& col = frame.col(c);
    for (size_t r = 0; r < col.size(); ++r) {
      std::string v = col.IsNull(r) ? "\x01" : col.ValueToString(r);
      for (char ch : v) {
        h ^= static_cast<unsigned char>(ch);
        h *= 1099511628211ULL;
      }
    }
  }
  return h;
}

std::vector<KernelResult> RunAll(const BenchOptions& options, bool smoke) {
  std::vector<KernelResult> results;
  const size_t reps = smoke ? 1 : 3;

  // --- Decision-tree fit, Table-6 micro config (digits + noise). ---
  {
    double multiplier = smoke ? 2.0 : 10.0;
    data::MicroBenchmark digits =
        data::MakeDigitsBenchmark(options.seed, multiplier);
    ml::TreeConfig config;
    config.task = ml::TaskType::kClassification;
    config.seed = options.seed;
    const size_t cells = digits.data.NumRows() * digits.data.NumFeatures();
    results.push_back(Measure(
        "tree_fit_digits", cells, reps, [&]() -> uint64_t {
          ml::DecisionTree tree(config);
          tree.Fit(digits.data.x, digits.data.y);
          return tree.NumNodes();
        }));
  }

  // --- Regression tree fit (dense synthetic, all features per node). ---
  {
    Rng rng(options.seed ^ 0x51ULL);
    const size_t rows = smoke ? 500 : 2000;
    const size_t cols = smoke ? 40 : 120;
    la::Matrix x(rows, cols);
    std::vector<double> y(rows);
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) x(r, c) = rng.Normal();
      y[r] = x(r, 0) - 0.5 * x(r, 1) + rng.Normal(0.0, 0.1);
    }
    ml::TreeConfig config;
    config.task = ml::TaskType::kRegression;
    config.seed = options.seed;
    results.push_back(
        Measure("tree_fit_regression", rows * cols, reps, [&]() -> uint64_t {
          ml::DecisionTree tree(config);
          tree.Fit(x, y);
          return tree.NumNodes();
        }));
  }

  // --- Single-thread random-forest fit (sqrt feature sampling). ---
  {
    data::MicroBenchmark digits =
        data::MakeDigitsBenchmark(options.seed, smoke ? 2.0 : 10.0);
    ml::ForestConfig config;
    config.task = ml::TaskType::kClassification;
    config.num_trees = smoke ? 4 : 10;
    config.num_threads = 1;
    config.seed = options.seed;
    const size_t cells = digits.data.NumRows() * digits.data.NumFeatures();
    results.push_back(Measure(
        "forest_fit_digits_1thread", cells, reps, [&]() -> uint64_t {
          ml::RandomForest forest(config);
          forest.Fit(digits.data.x, digits.data.y);
          return static_cast<uint64_t>(
              forest.feature_importances().size());
        }));
  }

  // --- Composite-key hash join (int64 + string hard keys). ---
  {
    const size_t rows = smoke ? 20000 : 200000;
    df::DataFrame base = MakeJoinTable(rows, rows / 2, 2, 101);
    df::DataFrame foreign = MakeJoinTable(rows, rows / 2, 4, 202);
    discovery::CandidateJoin cand;
    cand.foreign_table = "f";
    cand.keys = {
        discovery::JoinKeyPair{"id", "id", discovery::KeyKind::kHard},
        discovery::JoinKeyPair{"city", "city", discovery::KeyKind::kHard}};
    results.push_back(
        Measure("hash_join_composite", rows, reps, [&]() -> uint64_t {
          Rng rng(3);
          auto joined = join::ExecuteLeftJoin(base, foreign, cand, {}, &rng);
          ARDA_CHECK(joined.ok());
          return joined.value().NumRows();
        }));
  }

  // --- Group-by aggregation on a composite key. ---
  {
    const size_t rows = smoke ? 20000 : 200000;
    df::DataFrame table = MakeJoinTable(rows, rows / 8, 4, 303);
    results.push_back(
        Measure("group_by_composite", rows, reps, [&]() -> uint64_t {
          auto grouped = df::GroupByAggregate(table, {"id", "city"});
          ARDA_CHECK(grouped.ok());
          return grouped.value().NumRows();
        }));
  }

  // --- Ingest: chunked CSV parse vs. binary columnar cache. The ratio
  // csv_read_mixed / columnar_read_mixed is the repeat-run speedup the
  // .ardac table cache buys (acceptance floor: 2x, tracked in
  // BENCH_PR5.json). ---
  {
    namespace fs = std::filesystem;
    const size_t rows = smoke ? 10000 : 100000;
    df::DataFrame table = MakeMixedTable(rows, options.seed ^ 0x1157ULL);
    const fs::path dir = fs::temp_directory_path();
    const std::string csv_path = (dir / "arda_bench_ingest.csv").string();
    const std::string ardac_path =
        (dir / "arda_bench_ingest.ardac").string();
    ARDA_CHECK(df::WriteCsvFile(table, csv_path).ok());
    // The frames are hashed outside the timed region (per-cell string
    // formatting would otherwise dominate both timings and flatten the
    // csv-vs-columnar ratio); the hash still lands in the JSON checksum
    // and both paths must agree on it.
    df::DataFrame from_csv, from_columnar;
    results.push_back(
        Measure("csv_read_mixed", rows, reps, [&]() -> uint64_t {
          auto frame = df::ReadCsvFile(csv_path);
          ARDA_CHECK(frame.ok());
          from_csv = std::move(frame).value();
          return from_csv.NumRows();
        }));
    results.back().checksum = HashFrame(from_csv);
    const uint64_t csv_hash = results.back().checksum;
    results.push_back(
        Measure("columnar_write_mixed", rows, reps, [&]() -> uint64_t {
          ARDA_CHECK(df::WriteColumnar(table, ardac_path).ok());
          return rows;
        }));
    results.push_back(
        Measure("columnar_read_mixed", rows, reps, [&]() -> uint64_t {
          auto frame = df::ReadColumnar(ardac_path);
          ARDA_CHECK(frame.ok());
          from_columnar = std::move(frame).value();
          return from_columnar.NumRows();
        }));
    results.back().checksum = HashFrame(from_columnar);
    ARDA_CHECK(results.back().checksum == csv_hash);
    // Mapped open of the same cache file: the timed region covers what an
    // out-of-core load pays per table — header + column-index validation
    // and the eager string-column decode — while the numeric payload
    // stays untouched until the hash outside the timed region faults it
    // in. The ratio columnar_read_mixed / columnar_map_mixed is the
    // open-cost saving mmap buys (tracked in BENCH_PR10.json); the
    // checksum must still match the CSV parse byte for byte.
    df::DataFrame from_mapped;
    results.push_back(
        Measure("columnar_map_mixed", rows, reps, [&]() -> uint64_t {
          auto frame = df::MapColumnar(ardac_path);
          ARDA_CHECK(frame.ok());
          from_mapped = std::move(frame).value();
          return from_mapped.NumRows();
        }));
    results.back().checksum = HashFrame(from_mapped);
    ARDA_CHECK(results.back().checksum == csv_hash);
    // Drop the live mapping before unlinking its file.
    from_mapped = df::DataFrame();
    std::error_code ec;
    fs::remove(csv_path, ec);
    fs::remove(ardac_path, ec);
  }

  // --- Discovery scoring: exact value rescan vs. statistics catalog.
  // The ratio discovery_exact_rescan / discovery_catalog is the speedup
  // the sketch-backed catalog buys on a wide repository (acceptance
  // floor: 5x on the >=200-table pool, tracked in BENCH_PR6.json). ---
  {
    const size_t tables = smoke ? 40 : 220;
    const size_t rows = smoke ? 500 : 2000;
    Rng rng(options.seed ^ 0xD15CULL);
    discovery::DataRepository repo;
    df::DataFrame base;
    std::vector<int64_t> base_ids(rows);
    for (size_t i = 0; i < rows; ++i) {
      base_ids[i] = static_cast<int64_t>(i);
    }
    std::vector<double> y(rows);
    for (double& v : y) v = rng.Normal();
    ARDA_CHECK(base.AddColumn(df::Column::Int64("id", base_ids)).ok());
    ARDA_CHECK(base.AddColumn(df::Column::Double("y", y)).ok());
    ARDA_CHECK(repo.Add("base", std::move(base)).ok());
    for (size_t t = 0; t < tables; ++t) {
      // Shift each table's key domain so containment against the base
      // spans the full [0, 1] range across the pool.
      const int64_t offset = static_cast<int64_t>((t * rows) / tables);
      std::vector<int64_t> ids(rows);
      for (size_t i = 0; i < rows; ++i) {
        ids[i] = offset + static_cast<int64_t>(i);
      }
      std::vector<double> v(rows);
      for (double& x : v) x = rng.Normal();
      df::DataFrame foreign;
      ARDA_CHECK(foreign.AddColumn(df::Column::Int64("id", ids)).ok());
      ARDA_CHECK(
          foreign
              .AddColumn(df::Column::Double("v" + std::to_string(t), v))
              .ok());
      ARDA_CHECK(repo.Add("t" + std::to_string(t), std::move(foreign)).ok());
    }
    // The real pipeline computes the catalog once at ingest (or loads it
    // from the .ardac meta block); warm it outside the timed region so
    // the kernels compare scoring cost, not stats computation.
    for (const std::string& name : repo.Names()) repo.Stats(name);
    // Candidate-order fingerprint: cross-run determinism per mode is what
    // tools/run_bench.sh verifies.
    auto fingerprint =
        [](const std::vector<discovery::CandidateJoin>& candidates) {
          uint64_t h = 1469598103934665603ULL;
          auto mix = [&h](const std::string& s) {
            for (char ch : s) {
              h ^= static_cast<unsigned char>(ch);
              h *= 1099511628211ULL;
            }
            h ^= '|';
            h *= 1099511628211ULL;
          };
          for (const discovery::CandidateJoin& c : candidates) {
            mix(c.foreign_table);
            for (const discovery::JoinKeyPair& k : c.keys) {
              mix(k.base_column);
              mix(k.foreign_column);
            }
          }
          return h;
        };
    discovery::DiscoveryOptions exact_options;
    exact_options.scoring = discovery::DiscoveryScoring::kExact;
    results.push_back(Measure(
        "discovery_exact_rescan", tables, reps, [&]() -> uint64_t {
          return fingerprint(discovery::DiscoverCandidates(
              repo, "base", "y", exact_options));
        }));
    const discovery::DiscoveryOptions catalog_options;  // default scoring
    results.push_back(Measure(
        "discovery_catalog", tables, reps, [&]() -> uint64_t {
          return fingerprint(discovery::DiscoverCandidates(
              repo, "base", "y", catalog_options));
        }));
  }

  // --- End-to-end join + aggregate checksum workload (output hash). ---
  {
    const size_t rows = smoke ? 5000 : 40000;
    df::DataFrame table = MakeJoinTable(rows, rows / 8, 3, 404);
    results.push_back(
        Measure("group_by_hash_fingerprint", rows, 1, [&]() -> uint64_t {
          auto grouped = df::GroupByAggregate(table, {"id", "city"});
          ARDA_CHECK(grouped.ok());
          return HashFrame(grouped.value());
        }));
  }

  // --- Scalar-vs-SIMD dispatch pairs: the same workload pinned to each
  // dispatch level (<name>_scalar / <name>_avx2). Checksums must match
  // bit for bit — the pair is also a determinism check — and the
  // --assert-simd-floor flag (the perfsmoke lane) requires >=2x on >=3 of
  // the 5 pairs. The _avx2 rows are omitted on machines without AVX2. ---
  {
    struct LevelRestore {
      // SetLevel pins the probe level too, so save and restore both —
      // otherwise the pair sweep would erase the auto policy's
      // probe=scalar exception for the rest of the run.
      simd::SimdLevel prev = simd::ActiveLevel();
      simd::SimdLevel prev_probe = simd::ProbeLevel();
      ~LevelRestore() {
        simd::SetLevel(prev);
        simd::SetProbeLevel(prev_probe);
      }
    } restore;
    auto measure_pair = [&](const std::string& name, size_t items,
                            const std::function<uint64_t()>& fn) {
      ARDA_CHECK(simd::SetLevel(simd::SimdLevel::kScalar));
      results.push_back(Measure(name + "_scalar", items, reps, fn));
      if (simd::Avx2Supported()) {
        ARDA_CHECK(simd::SetLevel(simd::SimdLevel::kAvx2));
        results.push_back(Measure(name + "_avx2", items, reps, fn));
        ARDA_CHECK(results[results.size() - 1].checksum ==
                   results[results.size() - 2].checksum);
      }
    };
    auto bits_of = [](double d) {
      uint64_t b;
      std::memcpy(&b, &d, sizeof(b));
      return b;
    };

    // Kernel 1: composite-key batch hash + home-slot probe (ProbeAll on
    // two int64 key columns, the native-dictionary fast path).
    {
      const size_t rows = smoke ? 20000 : 200000;
      auto make_keys = [&](uint64_t seed) {
        Rng rng(seed);
        std::vector<int64_t> a(rows), b(rows);
        for (size_t i = 0; i < rows; ++i) {
          a[i] = static_cast<int64_t>(rng.UniformUint64(rows / 2));
          b[i] = static_cast<int64_t>(rng.UniformUint64(97));
        }
        df::DataFrame t;
        ARDA_CHECK(t.AddColumn(df::Column::Int64("a", std::move(a))).ok());
        ARDA_CHECK(t.AddColumn(df::Column::Int64("b", std::move(b))).ok());
        return t;
      };
      df::DataFrame build = make_keys(1101);
      df::DataFrame probe = make_keys(2202);
      df::KeyEncoder encoder(build, std::vector<std::string>{"a", "b"});
      const std::vector<size_t> col_idx = {0, 1};
      std::vector<uint64_t> gids(rows);
      measure_pair("simd_hash_probe", rows, [&]() -> uint64_t {
        encoder.ProbeAll(probe, col_idx, gids.data());
        uint64_t h = 1469598103934665603ULL;
        for (uint64_t g : gids) h = (h ^ g) * 1099511628211ULL;
        return h;
      });
    }

    // Kernel 2: CSR group-by bucketing (count + prefix sum + scatter).
    {
      const size_t n = smoke ? 200000 : 2000000;
      const size_t groups = 1024;
      Rng rng(3303);
      std::vector<uint64_t> gids(n);
      std::vector<uint8_t> valid(n);
      std::vector<double> values(n);
      for (size_t i = 0; i < n; ++i) {
        gids[i] = rng.UniformUint64(groups);
        valid[i] = rng.UniformUint64(20) != 0 ? 1 : 0;
        values[i] = rng.Normal();
      }
      std::vector<size_t> offsets(groups + 1);
      std::vector<size_t> cursor(groups);
      std::vector<double> out(n);
      measure_pair("simd_groupby_scatter", n, [&]() -> uint64_t {
        std::fill(offsets.begin(), offsets.end(), size_t{0});
        simd::CountPerGroup(gids.data(), valid.data(), n,
                            offsets.data() + 1);
        for (size_t g = 0; g < groups; ++g) offsets[g + 1] += offsets[g];
        std::copy(offsets.begin(), offsets.end() - 1, cursor.begin());
        simd::ScatterByGroup(values.data(), valid.data(), gids.data(), n,
                             cursor.data(), out.data());
        uint64_t h = offsets[groups];
        for (size_t i = 0; i < offsets[groups]; ++i) h ^= bits_of(out[i]) + i;
        return h;
      });
    }

    // Kernel 3: split-search gather + class-square scan (the decision
    // tree's presorted classification inner loops). The scan calls
    // ClassSquares once per row — with continuous features every value is
    // a distinct candidate threshold, so that is the dense shape
    // ScanThresholds runs — on a many-class target, over a node-sized
    // slice (tree nodes shrink geometrically, so most scans are
    // cache-resident).
    {
      const size_t n = smoke ? 50000 : 200000;
      const size_t num_classes = 64;
      Rng rng(4404);
      std::vector<double> col(n), y(n);
      std::vector<uint32_t> idx(n);
      for (size_t i = 0; i < n; ++i) {
        col[i] = rng.Normal();
        y[i] = static_cast<double>(rng.UniformUint64(num_classes));
        idx[i] = static_cast<uint32_t>(i);
      }
      // Shuffled gather order models the sorted-by-value row permutation.
      for (size_t i = n - 1; i > 0; --i) {
        std::swap(idx[i], idx[rng.UniformUint64(i + 1)]);
      }
      std::vector<double> vals(n), ys(n);
      std::vector<double> left_counts(num_classes, 0.0);
      std::vector<double> class_counts(num_classes);
      for (size_t c = 0; c < num_classes; ++c) {
        class_counts[c] = static_cast<double>(n / num_classes);
      }
      measure_pair("simd_split_scan", n, [&]() -> uint64_t {
        simd::GatherValsTargets(col.data(), y.data(), idx.data(), n,
                                vals.data(), ys.data());
        std::fill(left_counts.begin(), left_counts.end(), 0.0);
        uint64_t h = 0;
        for (size_t i = 0; i < n; ++i) {
          left_counts[static_cast<size_t>(ys[i])] += 1.0;
          double left_sq = 0.0, right_sq = 0.0;
          simd::ClassSquares(left_counts.data(), class_counts.data(),
                             num_classes, &left_sq, &right_sq);
          h ^= bits_of(left_sq) + bits_of(right_sq) + i;
        }
        h ^= bits_of(vals[n / 2]) ^ bits_of(ys[n / 3]);
        return h;
      });
    }

    // Kernel 4: squared Euclidean distance — the KNN Predict shape: each
    // query is scored against the whole row-major training matrix with
    // the batch kernel (geo joins hit the single-pair kernel at 2-3
    // dims). The training set is KNN-sized (1024 x 64 = 512 KiB), so the
    // pair measures compute, not DRAM streaming.
    {
      const size_t dims = 64;
      const size_t points = 1024;
      const size_t num_queries = smoke ? 40 : 200;
      Rng rng(5505);
      // The matrix must sit on a 64-byte boundary like the production KNN
      // buffer: a 16-byte-aligned std::vector makes every other 32-byte
      // load straddle a cache line, a heap-layout coin flip worth ~25%.
      simd::AlignedVector<double> queries(num_queries * dims);
      simd::AlignedVector<double> matrix(points * dims);
      for (double& v : queries) v = rng.Normal();
      for (double& v : matrix) v = rng.Normal();
      std::vector<double> d2(points);
      measure_pair("simd_distance", num_queries * points * dims,
                   [&]() -> uint64_t {
                     uint64_t h = 0;
                     for (size_t q = 0; q < num_queries; ++q) {
                       simd::SquaredDistanceToMany(queries.data() + q * dims,
                                                   matrix.data(), points,
                                                   dims, d2.data());
                       for (size_t p = 0; p < points; ++p) {
                         h ^= bits_of(d2[p]) + p;
                       }
                     }
                     return h;
                   });
    }

    // Kernel 5: bulk little-endian numeric decode + null-bitmap expansion
    // (the .ardac columnar read path).
    {
      const size_t n = smoke ? 400000 : 2000000;
      Rng rng(6606);
      std::vector<char> src(n * 8);
      for (size_t i = 0; i < n; ++i) {
        // Encode finite doubles so the checksum is NaN-payload free.
        double v = rng.Normal();
        std::memcpy(src.data() + i * 8, &v, 8);
      }
      std::vector<uint8_t> bitmap((n + 7) / 8);
      for (uint8_t& b : bitmap) {
        b = static_cast<uint8_t>(rng.UniformUint64(256));
      }
      std::vector<double> dst(n);
      std::vector<uint8_t> valid(n);
      measure_pair("simd_decode", n, [&]() -> uint64_t {
        simd::DecodeU64LeToDouble(src.data(), n, dst.data());
        simd::ExpandValidityBitmap(bitmap.data(), n, valid.data());
        uint64_t h = 0;
        for (size_t i = 0; i < n; i += 97) h ^= bits_of(dst[i]) + valid[i];
        return h;
      });
    }
  }

  return results;
}

// Names of the scalar-vs-SIMD pairs checked by --assert-simd-floor.
constexpr const char* kSimdPairs[] = {
    "simd_hash_probe", "simd_groupby_scatter", "simd_split_scan",
    "simd_distance", "simd_decode"};

// Returns false (after printing per-pair speedups) when fewer than
// `min_pairs` of the kSimdPairs hit `floor` on this machine.
bool CheckSimdFloor(const std::vector<KernelResult>& results, double floor,
                    size_t min_pairs) {
  auto seconds_of = [&](const std::string& name) -> double {
    for (const KernelResult& r : results) {
      if (r.name == name) return r.seconds;
    }
    return -1.0;
  };
  size_t met = 0;
  std::fprintf(stderr, "simd floor check (>=%.1fx on >=%zu of %zu pairs):\n",
               floor, min_pairs, std::size(kSimdPairs));
  for (const char* pair : kSimdPairs) {
    double scalar = seconds_of(std::string(pair) + "_scalar");
    double avx2 = seconds_of(std::string(pair) + "_avx2");
    if (scalar <= 0.0 || avx2 <= 0.0) {
      std::fprintf(stderr, "  %-22s missing\n", pair);
      continue;
    }
    double speedup = scalar / avx2;
    if (speedup >= floor) ++met;
    std::fprintf(stderr, "  %-22s %.2fx%s\n", pair, speedup,
                 speedup >= floor ? "" : "  (below floor)");
  }
  std::fprintf(stderr, "  -> %zu of %zu pairs at the floor\n", met,
               std::size(kSimdPairs));
  return met >= min_pairs;
}

// Evicts `path` from the page cache (fsync + POSIX_FADV_DONTNEED) so the
// mapped phase of the --oocore scenario starts cold — the regime the
// out-of-core mode exists for (a pool 10x memory cannot be cache-hot).
// Freshly written files sit in the cache as large folios, and mapping a
// large folio makes the whole folio resident: without the eviction the
// RSS bound would measure the kernel's folio accounting, not the mapped
// path's laziness. No-op off Linux.
void DropFromPageCache(const std::string& path) {
#if defined(__linux__)
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
  ::close(fd);
#else
  (void)path;
#endif
}

// Samples VmHWM into the existing `process.peak_rss_bytes` gauge and
// returns its current value (0 on platforms without the interface).
double PeakRssGauge() {
  arda::metrics::UpdatePeakRssGauge();
  arda::metrics::MetricsSnapshot snapshot =
      arda::metrics::GlobalRegistry().Snapshot();
  for (const arda::metrics::GaugeSnapshot& g : snapshot.gauges) {
    if (g.name == "process.peak_rss_bytes") return g.value;
  }
  return 0.0;
}

// --- Out-of-core bound scenario (`--oocore`). ---
//
// Builds an `.ardac` v3 pool roughly 10x a process memory budget (40
// tables, 1 int64 key + 20 double columns each), opens every table with
// MapColumnar, and runs the budget-partitioned group-by over ~10% of the
// pool's columns (the key plus one value column per table). Because
// mapped columns fault in lazily, peak RSS should grow by about the
// touched 2-of-21 column slice (~0.95x budget) plus transient partition
// frames; the scenario asserts the growth stays under 1.5x the budget,
// read from the same VmHWM gauge the CLI stage summary prints. An eager
// loader would grow by the full pool (10x) and fail loudly. Exit 1 on a
// violation; numbers land in BENCH_PR10.json via --json.
int RunOutOfCore(uint64_t budget_bytes, bool json) {
  namespace fs = std::filesystem;
  constexpr size_t kTables = 40;
  constexpr size_t kValueCols = 20;
  // ~9 bytes per numeric cell on disk (8 value + 1 validity byte); 40
  // tables of pool/40 rows each put the pool at ~10x the budget.
  const uint64_t pool_target = budget_bytes * 10;
  const size_t rows = std::max<uint64_t>(
      1024, pool_target / kTables / ((kValueCols + 1) * 9));
  const fs::path dir = fs::temp_directory_path() / "arda_bench_oocore";
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  auto table_path = [&](size_t t) {
    return (dir / ("t" + std::to_string(t) + ".ardac")).string();
  };

  // Generate and write one table at a time so the generation phase's own
  // peak stays near one table, not the pool.
  Rng rng(0x00C0DEULL);
  uint64_t pool_bytes = 0;
  for (size_t t = 0; t < kTables; ++t) {
    df::DataFrame table;
    std::vector<int64_t> key(rows);
    for (int64_t& k : key) {
      k = static_cast<int64_t>(rng.UniformUint64(1024));
    }
    ARDA_CHECK(table.AddColumn(df::Column::Int64("key", key)).ok());
    for (size_t c = 0; c < kValueCols; ++c) {
      std::vector<double> v(rows);
      for (double& x : v) x = rng.Normal();
      ARDA_CHECK(
          table.AddColumn(df::Column::Double("v" + std::to_string(c), v))
              .ok());
    }
    ARDA_CHECK(df::WriteColumnar(table, table_path(t)).ok());
    pool_bytes += static_cast<uint64_t>(fs::file_size(table_path(t), ec));
    DropFromPageCache(table_path(t));
  }

  // VmHWM is monotone, so the bound is on growth over the post-generation
  // baseline. A slurped load would add ~pool_bytes here and trip the
  // ceiling by a wide margin.
  const double baseline = PeakRssGauge();

  double open_seconds = NowSeconds();
  std::vector<df::DataFrame> pool;
  pool.reserve(kTables);
  for (size_t t = 0; t < kTables; ++t) {
    auto mapped = df::MapColumnar(table_path(t));
    ARDA_CHECK(mapped.ok());
    pool.push_back(std::move(mapped).value());
  }
  open_seconds = NowSeconds() - open_seconds;
  const double after_open = PeakRssGauge();

  df::AggregateOptions agg;
  // Each scan's working set is a 2-column borrowed slice, far below the
  // process budget; hand the kernel a small fraction of it so the radix
  // partitioning genuinely engages (fan-out >= 2) instead of resolving
  // to one partition.
  agg.memory_budget_bytes =
      std::max<uint64_t>(1, budget_bytes / 128);
  double scan_seconds = NowSeconds();
  uint64_t checksum = 0;
  size_t groups = 0;
  for (size_t t = 0; t < kTables; ++t) {
    df::DataFrame narrow;
    ARDA_CHECK(narrow.AddColumn(pool[t].col(0)).ok());
    ARDA_CHECK(narrow.AddColumn(pool[t].col(1 + t % kValueCols)).ok());
    auto grouped = df::GroupByAggregate(narrow, {"key"}, agg);
    ARDA_CHECK(grouped.ok());
    groups += grouped.value().NumRows();
    checksum ^= HashFrame(grouped.value()) * (t + 1);
  }
  scan_seconds = NowSeconds() - scan_seconds;

  const double peak = PeakRssGauge();
  const double growth = peak - baseline;
  const double ceiling = 1.5 * static_cast<double>(budget_bytes);
  const bool gauge_available = baseline > 0.0 && peak > 0.0;
  const bool pass = !gauge_available || growth <= ceiling;

  pool.clear();
  fs::remove_all(dir, ec);

  if (json) {
    std::printf("{\n");
    std::printf("  \"bench\": \"kernels_oocore\",\n");
    std::printf("  \"budget_bytes\": %llu,\n",
                static_cast<unsigned long long>(budget_bytes));
    std::printf("  \"pool_bytes\": %llu,\n",
                static_cast<unsigned long long>(pool_bytes));
    std::printf("  \"tables\": %zu,\n", kTables);
    std::printf("  \"rows_per_table\": %zu,\n", rows);
    std::printf("  \"map_open_seconds\": %.6f,\n", open_seconds);
    std::printf("  \"partitioned_scan_seconds\": %.6f,\n", scan_seconds);
    std::printf("  \"groups\": %zu,\n", groups);
    std::printf("  \"checksum\": %llu,\n",
                static_cast<unsigned long long>(checksum));
    std::printf("  \"peak_rss_baseline_bytes\": %.0f,\n", baseline);
    std::printf("  \"peak_rss_after_open_bytes\": %.0f,\n", after_open);
    std::printf("  \"peak_rss_bytes\": %.0f,\n", peak);
    std::printf("  \"peak_rss_growth_bytes\": %.0f,\n", growth);
    std::printf("  \"ceiling_bytes\": %.0f,\n", ceiling);
    std::printf("  \"gauge_available\": %s,\n",
                gauge_available ? "true" : "false");
    std::printf("  \"pass\": %s\n", pass ? "true" : "false");
    std::printf("}\n");
  } else {
    std::printf("=== Out-of-core bound (pool 10x budget) ===\n");
    std::printf("budget       %10.1f MiB\n",
                static_cast<double>(budget_bytes) / (1 << 20));
    std::printf("pool         %10.1f MiB (%zu tables x %zu rows)\n",
                static_cast<double>(pool_bytes) / (1 << 20), kTables,
                rows);
    std::printf("map open     %10.4f s\n", open_seconds);
    std::printf("scan         %10.4f s (%zu groups)\n", scan_seconds,
                groups);
    std::printf("RSS growth   %10.1f MiB (ceiling %.1f MiB)\n",
                growth / (1 << 20), ceiling / (1 << 20));
  }
  if (!gauge_available) {
    std::fprintf(stderr,
                 "oocore: peak-RSS gauge unavailable here; bound not "
                 "asserted\n");
    return 0;
  }
  if (!pass) {
    std::fprintf(stderr,
                 "oocore bound FAILED: peak RSS grew %.1f MiB > %.1f MiB "
                 "ceiling (1.5x budget)\n",
                 growth / (1 << 20), ceiling / (1 << 20));
    return 1;
  }
  return 0;
}

void PrintJson(const std::vector<KernelResult>& results, uint64_t seed,
               bool smoke, bool tracing) {
  std::printf("{\n");
  std::printf("  \"bench\": \"kernels\",\n");
  std::printf("  \"seed\": %llu,\n",
              static_cast<unsigned long long>(seed));
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf("  \"tracing\": %s,\n", tracing ? "true" : "false");
  std::printf("  \"simd_level\": \"%s\",\n",
              arda::simd::DispatchSummary().c_str());
  std::printf("  \"simd_supported\": \"%s\",\n",
              arda::simd::Avx2Supported() ? "avx2" : "scalar");
  std::printf("  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const KernelResult& r = results[i];
    std::printf("    {\"name\": \"%s\", \"seconds\": %.6f, "
                "\"items_per_second\": %.1f, \"checksum\": %llu}%s\n",
                arda::JsonEscape(r.name).c_str(), r.seconds,
                r.items_per_second,
                static_cast<unsigned long long>(r.checksum),
                i + 1 < results.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

}  // namespace
}  // namespace arda::bench

int main(int argc, char** argv) {
  using namespace arda::bench;
  BenchOptions options = ParseOptions(argc, argv);
  bool smoke = false;
  bool tracing = false;
  bool assert_simd_floor = false;
  bool oocore = false;
  uint64_t oocore_budget = 8ULL << 20;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
    // Runs the out-of-core bound scenario (mmap'd 10x-budget pool,
    // partitioned group-by, peak-RSS ceiling) instead of the kernel
    // sweep. --oocore-budget=SIZE (k/m/g suffixes) overrides the 8 MiB
    // default process budget.
    if (std::string(argv[i]) == "--oocore") oocore = true;
    if (std::string_view(argv[i]).rfind("--oocore-budget=", 0) == 0) {
      if (!arda::ParseByteSize(std::string_view(argv[i]).substr(16),
                               &oocore_budget) ||
          oocore_budget == 0) {
        std::fprintf(stderr, "bad --oocore-budget value\n");
        return 2;
      }
    }
    // Arms span tracing for the whole run: measures the instrumentation
    // overhead (tools/run_bench.sh --trace-overhead diffs on vs. off) and
    // doubles as a determinism check since checksums must not move.
    if (std::string(argv[i]) == "--trace") tracing = true;
    // Fails (exit 1) unless >=3 of the 5 scalar-vs-SIMD pairs reach 2x;
    // no-op on machines without AVX2 (there is nothing to compare).
    if (std::string(argv[i]) == "--assert-simd-floor") {
      assert_simd_floor = true;
    }
  }
  if (tracing) arda::trace::Enable();
  if (oocore) return RunOutOfCore(oocore_budget, options.json);
  std::vector<KernelResult> results = RunAll(options, smoke);
  if (options.json) {
    PrintJson(results, options.seed, smoke, tracing);
  } else {
    std::printf("=== Hot-path kernel benchmarks ===\n");
    PrintRow({"kernel", "seconds", "items/s"}, 28);
    PrintRule(3, 28);
    for (const KernelResult& r : results) {
      PrintRow({r.name, arda::StrFormat("%.4fs", r.seconds),
                arda::StrFormat("%.0f", r.items_per_second)},
               28);
    }
  }
  if (assert_simd_floor) {
    if (!arda::simd::Avx2Supported()) {
      std::fprintf(stderr,
                   "simd floor check skipped: AVX2 unsupported here\n");
      return 0;
    }
    if (!CheckSimdFloor(results, 2.0, 3)) {
      std::fprintf(stderr, "simd floor check FAILED\n");
      return 1;
    }
  }
  return 0;
}
