// Component micro-benchmarks (google-benchmark): the hot operations the
// ARDA pipeline is built from — hash joins, soft joins, group-by
// aggregation, encoding, forest training, sparse-regression ranking, one
// RIFS injection round, and CountSketch row sketching.

#include <benchmark/benchmark.h>

#include "coreset/coreset.h"
#include "dataframe/aggregate.h"
#include "dataframe/encode.h"
#include "featsel/model_rankers.h"
#include "featsel/rifs.h"
#include "join/join_executor.h"
#include "ml/random_forest.h"
#include "util/rng.h"

namespace arda {
namespace {

df::DataFrame MakeKeyedTable(size_t rows, size_t values, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> keys(rows);
  std::vector<double> v(rows);
  for (size_t i = 0; i < rows; ++i) {
    keys[i] = static_cast<int64_t>(i % (rows / 2 + 1));
    v[i] = rng.Normal();
  }
  df::DataFrame table;
  ARDA_CHECK(table.AddColumn(df::Column::Int64("id", keys)).ok());
  for (size_t c = 0; c < values; ++c) {
    std::vector<double> col(rows);
    for (double& x : col) x = rng.Normal();
    ARDA_CHECK(table
                   .AddColumn(df::Column::Double("v" + std::to_string(c),
                                                 col))
                   .ok());
  }
  (void)v;
  return table;
}

ml::Dataset MakeDataset(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  ml::Dataset data;
  data.task = ml::TaskType::kRegression;
  data.x = la::Matrix(rows, cols);
  data.y.resize(rows);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) data.x(r, c) = rng.Normal();
    data.y[r] = data.x(r, 0) + rng.Normal(0.0, 0.2);
  }
  for (size_t c = 0; c < cols; ++c) {
    data.feature_names.push_back("f" + std::to_string(c));
  }
  return data;
}

void BM_HardHashJoin(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  df::DataFrame base = MakeKeyedTable(n, 2, 1);
  df::DataFrame foreign = MakeKeyedTable(n, 4, 2);
  discovery::CandidateJoin cand;
  cand.foreign_table = "f";
  cand.keys = {discovery::JoinKeyPair{"id", "id",
                                      discovery::KeyKind::kHard}};
  Rng rng(3);
  for (auto _ : state) {
    auto joined = join::ExecuteLeftJoin(base, foreign, cand, {}, &rng);
    benchmark::DoNotOptimize(joined);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_HardHashJoin)->Arg(1000)->Arg(4000);

void BM_SoftTwoWayJoin(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  df::DataFrame base, foreign;
  std::vector<double> bt(n), ft(n), fv(n);
  for (size_t i = 0; i < n; ++i) {
    bt[i] = static_cast<double>(i);
    ft[i] = static_cast<double>(i) + 0.37;
    fv[i] = rng.Normal();
  }
  ARDA_CHECK(base.AddColumn(df::Column::Double("t", bt)).ok());
  ARDA_CHECK(foreign.AddColumn(df::Column::Double("t", ft)).ok());
  ARDA_CHECK(foreign.AddColumn(df::Column::Double("v", fv)).ok());
  discovery::CandidateJoin cand;
  cand.foreign_table = "f";
  cand.keys = {discovery::JoinKeyPair{"t", "t", discovery::KeyKind::kSoft}};
  join::JoinOptions options;
  options.soft_method = join::SoftJoinMethod::kTwoWayNearest;
  for (auto _ : state) {
    auto joined = join::ExecuteLeftJoin(base, foreign, cand, options, &rng);
    benchmark::DoNotOptimize(joined);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_SoftTwoWayJoin)->Arg(1000)->Arg(4000);

void BM_GroupByAggregate(benchmark::State& state) {
  df::DataFrame table =
      MakeKeyedTable(static_cast<size_t>(state.range(0)), 4, 7);
  for (auto _ : state) {
    auto grouped = df::GroupByAggregate(table, {"id"});
    benchmark::DoNotOptimize(grouped);
  }
}
BENCHMARK(BM_GroupByAggregate)->Arg(1000)->Arg(8000);

void BM_EncodeFeatures(benchmark::State& state) {
  df::DataFrame table =
      MakeKeyedTable(static_cast<size_t>(state.range(0)), 8, 9);
  for (auto _ : state) {
    auto encoded = df::EncodeFeatures(table, {});
    benchmark::DoNotOptimize(encoded);
  }
}
BENCHMARK(BM_EncodeFeatures)->Arg(1000)->Arg(8000);

void BM_RandomForestFit(benchmark::State& state) {
  ml::Dataset data =
      MakeDataset(600, static_cast<size_t>(state.range(0)), 11);
  ml::ForestConfig config;
  config.task = ml::TaskType::kRegression;
  config.num_trees = 20;
  for (auto _ : state) {
    ml::RandomForest forest(config);
    forest.Fit(data.x, data.y);
    benchmark::DoNotOptimize(forest.feature_importances());
  }
}
BENCHMARK(BM_RandomForestFit)->Arg(20)->Arg(100)->Arg(400);

// Thread-pool scaling of forest training: same fit at 1/2/4/8 threads
// (and 0 = hardware concurrency). Results are bit-identical across
// thread counts; only the wall-clock should change.
void BM_RandomForestFitThreads(benchmark::State& state) {
  ml::Dataset data = MakeDataset(600, 100, 11);
  ml::ForestConfig config;
  config.task = ml::TaskType::kRegression;
  config.num_trees = 40;
  config.num_threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    ml::RandomForest forest(config);
    forest.Fit(data.x, data.y);
    benchmark::DoNotOptimize(forest.feature_importances());
  }
  state.SetLabel("threads=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_RandomForestFitThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(0);

// Thread-pool scaling of a full RIFS run (the per-round ranker ensemble
// is the parallel region).
void BM_RifsRunThreads(benchmark::State& state) {
  ml::Dataset data = MakeDataset(300, 60, 29);
  ml::Evaluator evaluator(data, 0.25, 31);
  featsel::RifsConfig config;
  config.num_rounds = 8;
  config.num_threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    Rng rng(33);
    auto result = featsel::RunRifs(data, evaluator, config, &rng);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel("threads=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_RifsRunThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SparseRegressionRank(benchmark::State& state) {
  ml::Dataset data =
      MakeDataset(400, static_cast<size_t>(state.range(0)), 13);
  featsel::SparseRegressionRanker ranker;
  Rng rng(15);
  for (auto _ : state) {
    auto scores = ranker.Rank(data, &rng);
    benchmark::DoNotOptimize(scores);
  }
}
BENCHMARK(BM_SparseRegressionRank)->Arg(50)->Arg(200);

void BM_RifsNoiseRound(benchmark::State& state) {
  ml::Dataset data =
      MakeDataset(400, static_cast<size_t>(state.range(0)), 17);
  Rng rng(19);
  for (auto _ : state) {
    la::Matrix noise = featsel::MakeNoiseFeatures(
        data, data.NumFeatures() / 5 + 1,
        featsel::NoiseKind::kMomentMatched, &rng);
    benchmark::DoNotOptimize(noise);
  }
}
BENCHMARK(BM_RifsNoiseRound)->Arg(50)->Arg(200);

void BM_CountSketch(benchmark::State& state) {
  ml::Dataset data =
      MakeDataset(static_cast<size_t>(state.range(0)), 50, 21);
  Rng rng(23);
  for (auto _ : state) {
    ml::Dataset sketched =
        coreset::SketchRows(data, data.NumRows() / 4, &rng);
    benchmark::DoNotOptimize(sketched);
  }
}
BENCHMARK(BM_CountSketch)->Arg(2000)->Arg(8000);

}  // namespace
}  // namespace arda

BENCHMARK_MAIN();
