// Reproduces Table 3: % change of CountSketch row sketching over uniform
// sampling for the regression scenarios (Taxi, Pickup, Poverty) across
// feature-selection methods. Scores are negative MAE, so the reported
// %-change is improvement in error.

#include <cstdio>

#include "bench/bench_common.h"
#include "coreset/coreset.h"
#include "util/string_util.h"

namespace arda::bench {
namespace {

double SelectorScore(const ml::Dataset& data, const std::string& method,
                     uint64_t seed) {
  std::unique_ptr<featsel::FeatureSelector> selector =
      featsel::MakeSelector(method);
  ARDA_CHECK(selector != nullptr);
  ml::Evaluator evaluator(data, 0.25, seed);
  Rng rng(seed ^ 0xC0DEULL);
  return selector->Select(data, evaluator, &rng).score;
}

void RunScenario(const data::Scenario& scenario,
                 const BenchOptions& options) {
  core::ArdaConfig config = DefaultConfig(options);
  Rng rng(options.seed);
  ml::Dataset full = MaterializeAll(scenario, config, &rng);
  const size_t m = full.NumRows() / 2;
  std::vector<size_t> rows = rng.SampleWithoutReplacement(full.NumRows(), m);
  std::sort(rows.begin(), rows.end());
  ml::Dataset uniform = full.SelectRows(rows);
  ml::Dataset sketched = coreset::SketchRows(full, m, &rng);

  const std::vector<std::string> methods = {
      "rifs",        "sparse_regression", "f_test",
      "lasso",       "mutual_info",       "relief",
      "all_features", "random_forest",    "forward_selection"};
  std::printf("\n--- %s (%zu rows -> coresets of ~%zu) ---\n",
              scenario.name.c_str(), full.NumRows(), m);
  PrintRow({"method", "sketch_vs_uniform"}, 20);
  PrintRule(2, 20);
  for (const std::string& method : methods) {
    double u = SelectorScore(uniform, method, options.seed);
    double k = SelectorScore(sketched, method, options.seed);
    PrintRow({method, StrFormat("%+.2f%%", ImprovementPercent(u, k))}, 20);
  }
}

}  // namespace
}  // namespace arda::bench

int main(int argc, char** argv) {
  using namespace arda::bench;
  using namespace arda;
  BenchOptions options = ParseOptions(argc, argv);
  std::printf("=== Table 3: sketching vs uniform sampling (regression; "
              "%%-change in score) ===\n");
  for (data::Scenario (*make)(uint64_t, data::ScenarioScale) :
       {&data::MakeTaxiScenario, &data::MakePickupScenario,
        &data::MakePovertyScenario}) {
    RunScenario(make(options.seed, options.scale()), options);
  }
  return 0;
}
