// Reproduces Table 6: accuracy and feature-selection time per selector on
// the micro-benchmark datasets (Kraken, Digits) with 10x injected noise,
// plus the baseline (original features only), all-features, AutoML rows,
// and the RIFS ensemble-weight (nu) ablation from DESIGN.md.

#include <cstdio>

#include "bench/bench_common.h"
#include "ml/automl.h"
#include "ml/evaluator.h"
#include "util/string_util.h"

namespace arda::bench {
namespace {

void RunBenchmark(const data::MicroBenchmark& bench,
                  const BenchOptions& options, bool ablate_nu) {
  std::printf("\n--- %s: %zu rows, %zu original + %zu noise features "
              "---\n",
              bench.name.c_str(), bench.data.NumRows(), bench.num_original,
              bench.data.NumFeatures() - bench.num_original);
  PrintRow({"method", "accuracy", "time"}, 22);
  PrintRule(3, 22);

  ml::Evaluator evaluator(bench.data, 0.25, options.seed);

  // Baseline: the original features only (pre-injection).
  std::vector<size_t> original(bench.num_original);
  for (size_t f = 0; f < bench.num_original; ++f) original[f] = f;
  PrintRow({"baseline (our)",
            StrFormat("%.2f%%", evaluator.FinalScore(original) * 100.0),
            "-"},
           22);
  PrintRow({"all features (our)",
            StrFormat("%.2f%%",
                      evaluator.FinalScore(ml::AllFeatureIndices(
                          bench.data.NumFeatures())) *
                          100.0),
            "-"},
           22);
  {
    ml::AutoMlConfig automl;
    automl.time_budget_seconds = options.automl_budget_seconds();
    automl.seed = options.seed;
    ml::AutoMlResult result =
        ml::RunRandomSearchAutoMl(bench.data, automl);
    PrintRow({"all features (AutoML)",
              StrFormat("%.2f%%", result.best_score * 100.0),
              StrFormat("%.1fs", result.elapsed_seconds)},
             22);
    ml::Dataset base = bench.data.SelectFeatures(original);
    result = ml::RunRandomSearchAutoMl(base, automl);
    PrintRow({"baseline (AutoML)",
              StrFormat("%.2f%%", result.best_score * 100.0),
              StrFormat("%.1fs", result.elapsed_seconds)},
             22);
  }

  std::vector<std::string> methods =
      featsel::PaperSelectorNames(ml::TaskType::kClassification);
  for (const std::string& method : methods) {
    std::unique_ptr<featsel::FeatureSelector> selector =
        featsel::MakeSelector(method);
    Rng rng(options.seed ^ 0x77ULL);
    featsel::SelectionResult result =
        selector->Select(bench.data, evaluator, &rng);
    PrintRow({method, StrFormat("%.2f%%", result.score * 100.0),
              StrFormat("%.1fs", result.seconds)},
             22);
  }

  if (ablate_nu) {
    std::printf("RIFS ensemble-weight ablation (nu * RF + (1-nu) * "
                "sparse regression):\n");
    for (double nu : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      featsel::RifsConfig config;
      config.num_rounds = options.rifs_rounds();
      config.nu = nu;
      std::unique_ptr<featsel::FeatureSelector> selector =
          featsel::MakeRifsSelector(config,
                                    StrFormat("rifs(nu=%.2f)", nu));
      Rng rng(options.seed ^ 0x88ULL);
      featsel::SelectionResult result =
          selector->Select(bench.data, evaluator, &rng);
      PrintRow({selector->name(),
                StrFormat("%.2f%%", result.score * 100.0),
                StrFormat("%.1fs", result.seconds)},
               22);
    }
  }
}

}  // namespace
}  // namespace arda::bench

int main(int argc, char** argv) {
  using namespace arda::bench;
  using namespace arda;
  BenchOptions options = ParseOptions(argc, argv);
  bool ablate_nu = true;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--no-ablate-nu") ablate_nu = false;
  }
  std::printf("=== Table 6: micro-benchmark selector comparison ===\n");
  double multiplier = options.fast ? 2.0 : 10.0;
  RunBenchmark(data::MakeKrakenBenchmark(options.seed, multiplier), options,
               ablate_nu);
  RunBenchmark(data::MakeDigitsBenchmark(options.seed, multiplier), options,
               ablate_nu);
  return 0;
}
