// Reproduces Table 5: change in final score of table-at-a-time joins and
// full materialization relative to the default budget-join, for four
// feature selectors on Taxi, Pickup, Poverty and School (S). Includes the
// budget-size ablation called out in DESIGN.md.

#include <cstdio>

#include "bench/bench_common.h"
#include "util/string_util.h"

namespace arda::bench {
namespace {

double RunWithPlan(const data::Scenario& scenario,
                   const BenchOptions& options, const std::string& selector,
                   core::JoinPlanKind plan, size_t budget = 0) {
  core::ArdaConfig config = DefaultConfig(options);
  config.selector = selector;
  config.plan = plan;
  // The paper's default budget (one feature per coreset row) never binds
  // at this repository's laptop scale — every scenario's full feature
  // count fits in one batch, collapsing budget-join into full
  // materialization. A 100-feature budget restores the three-way
  // distinction Table 5 measures.
  config.budget = budget > 0 ? budget : 100;
  return RunArda(scenario, config).final_score;
}

void RunScenario(const data::Scenario& scenario,
                 const BenchOptions& options) {
  const std::vector<std::string> selectors = {
      "rifs", "forward_selection", "random_forest", "sparse_regression"};
  std::printf("\n--- %s (change vs budget-join) ---\n",
              scenario.name.c_str());
  PrintRow({"method", "table_join", "full_mat"}, 20);
  PrintRule(3, 20);
  for (const std::string& selector : selectors) {
    double budget = RunWithPlan(scenario, options, selector,
                                core::JoinPlanKind::kBudget);
    double table = RunWithPlan(scenario, options, selector,
                               core::JoinPlanKind::kTableAtATime);
    double full = RunWithPlan(scenario, options, selector,
                              core::JoinPlanKind::kFullMaterialization);
    PrintRow({selector,
              StrFormat("%+.2f%%", ImprovementPercent(budget, table)),
              StrFormat("%+.2f%%", ImprovementPercent(budget, full))},
             20);
  }
}

void BudgetAblation(const data::Scenario& scenario,
                    const BenchOptions& options) {
  std::printf("\nbudget-size ablation on %s (RIFS; score per budget):\n",
              scenario.name.c_str());
  PrintRow({"budget", "score"}, 16);
  PrintRule(2, 16);
  for (size_t budget : {25u, 100u, 400u, 1600u}) {
    double score = RunWithPlan(scenario, options, "rifs",
                               core::JoinPlanKind::kBudget, budget);
    PrintRow({StrFormat("%zu", budget), StrFormat("%.3f", score)}, 16);
  }
}

}  // namespace
}  // namespace arda::bench

int main(int argc, char** argv) {
  using namespace arda::bench;
  using namespace arda;
  BenchOptions options = ParseOptions(argc, argv);
  std::printf("=== Table 5: table grouping strategies vs budget-join "
              "===\n");
  RunScenario(data::MakeTaxiScenario(options.seed, options.scale()),
              options);
  RunScenario(data::MakePickupScenario(options.seed, options.scale()),
              options);
  RunScenario(data::MakePovertyScenario(options.seed, options.scale()),
              options);
  data::Scenario school =
      data::MakeSchoolScenario(false, options.seed, options.scale());
  RunScenario(school, options);
  BudgetAblation(school, options);
  return 0;
}
