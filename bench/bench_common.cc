#include "bench/bench_common.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "join/impute.h"
#include "util/string_util.h"

namespace arda::bench {

BenchOptions ParseOptions(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      options.fast = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      options.json = true;
    } else if (StartsWith(argv[i], "--seed=")) {
      int64_t seed = 0;
      if (ParseInt64(argv[i] + 7, &seed)) {
        options.seed = static_cast<uint64_t>(seed);
      }
    }
  }
  const char* env = std::getenv("ARDA_BENCH_FAST");
  if (env != nullptr && std::strcmp(env, "1") == 0) {
    options.fast = true;
  }
  return options;
}

core::ArdaConfig DefaultConfig(const BenchOptions& options) {
  core::ArdaConfig config;
  config.seed = options.seed;
  config.rifs.num_rounds = options.rifs_rounds();
  return config;
}

core::ArdaReport RunArda(const data::Scenario& scenario,
                         const core::ArdaConfig& config) {
  core::Arda arda(config);
  Result<core::ArdaReport> report = arda.Run(scenario.MakeTask());
  if (!report.ok()) {
    std::fprintf(stderr, "ARDA run failed on %s: %s\n",
                 scenario.name.c_str(), report.status().ToString().c_str());
    std::abort();
  }
  return std::move(report).value();
}

ml::Dataset MaterializeAll(const data::Scenario& scenario,
                           const core::ArdaConfig& config, Rng* rng) {
  df::DataFrame working = scenario.base;
  for (const discovery::CandidateJoin& cand : scenario.candidates) {
    Result<const df::DataFrame*> foreign =
        scenario.repo.Get(cand.foreign_table);
    if (!foreign.ok()) continue;
    Result<df::DataFrame> joined = join::ExecuteLeftJoin(
        working, *foreign.value(), cand, config.join, rng);
    if (joined.ok()) working = std::move(joined).value();
  }
  join::ImputeInPlace(&working, rng);
  Result<ml::Dataset> data = core::BuildDataset(
      working, scenario.target_column, scenario.task, config.encode);
  ARDA_CHECK(data.ok());
  return std::move(data).value();
}

ml::Dataset BaseDataset(const data::Scenario& scenario,
                        const core::ArdaConfig& config) {
  df::DataFrame base = scenario.base;
  Rng rng(config.seed);
  join::ImputeInPlace(&base, &rng);
  Result<ml::Dataset> data = core::BuildDataset(
      base, scenario.target_column, scenario.task, config.encode);
  ARDA_CHECK(data.ok());
  return std::move(data).value();
}

std::vector<SelectorRunRow> RunSelectorSweep(
    const data::Scenario& scenario, const BenchOptions& options,
    const std::vector<std::string>& selectors, double* base_score_out) {
  core::ArdaConfig config = DefaultConfig(options);
  ml::Dataset base_data = BaseDataset(scenario, config);
  ml::Evaluator base_eval(base_data, config.test_fraction, config.seed);
  double base_score = base_eval.FinalScore(
      ml::AllFeatureIndices(base_data.NumFeatures()));
  if (base_score_out != nullptr) *base_score_out = base_score;

  std::vector<SelectorRunRow> rows;
  for (const std::string& selector : selectors) {
    core::ArdaConfig run_config = config;
    run_config.selector = selector;
    core::ArdaReport report = RunArda(scenario, run_config);
    SelectorRunRow row;
    row.method = selector;
    row.score = report.final_score;
    row.seconds = report.selection_seconds;
    row.improvement = ImprovementPercent(base_score, report.final_score);
    rows.push_back(std::move(row));
  }
  return rows;
}

double ImprovementPercent(double base, double score) {
  if (std::fabs(base) < 1e-12) return (score - base) * 100.0;
  return (score - base) / std::fabs(base) * 100.0;
}

double DisplayMetric(ml::TaskType task, double score) {
  return task == ml::TaskType::kClassification ? score * 100.0 : -score;
}

std::string Pad(const std::string& text, size_t width) {
  if (text.size() >= width) return text.substr(0, width);
  return text + std::string(width - text.size(), ' ');
}

void PrintRow(const std::vector<std::string>& cells, size_t width) {
  std::string line;
  for (const std::string& cell : cells) {
    line += Pad(cell, width);
    line += ' ';
  }
  std::printf("%s\n", line.c_str());
}

void PrintRule(size_t columns, size_t width) {
  std::printf("%s\n", std::string(columns * (width + 1), '-').c_str());
}

}  // namespace arda::bench
