// Reproduces Table 1: error (MAE, regression) or accuracy (classification)
// plus feature-selection time on the five real-world-style scenarios, for
// ARDA run with each feature-selection method, alongside the baseline
// (base table only), all-features, TR-rule and AutoML rows.

#include <cstdio>

#include "bench/bench_common.h"
#include "discovery/tuple_ratio.h"
#include "ml/automl.h"
#include "ml/evaluator.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace arda::bench {
namespace {

void RunScenario(const data::Scenario& scenario,
                 const BenchOptions& options) {
  core::ArdaConfig config = DefaultConfig(options);
  Rng rng(options.seed);
  const char* metric_name = scenario.task == ml::TaskType::kClassification
                                ? "accuracy%"
                                : "MAE";

  std::printf("\n--- %s (%s; metric: %s; %zu candidate tables) ---\n",
              scenario.name.c_str(), ml::TaskTypeName(scenario.task),
              metric_name, scenario.candidates.size());
  PrintRow({"method", "metric", "time"}, 22);
  PrintRule(3, 22);

  double base_score = 0.0;
  std::vector<std::string> selectors = {"rifs"};
  for (const std::string& name :
       featsel::PaperSelectorNames(scenario.task)) {
    if (name != "rifs") selectors.push_back(name);
  }
  std::vector<SelectorRunRow> rows =
      RunSelectorSweep(scenario, options, selectors, &base_score);

  auto print_metric_row = [&](const std::string& method, double score,
                              double seconds) {
    PrintRow({method,
              StrFormat("%.2f", DisplayMetric(scenario.task, score)),
              StrFormat("%.1fs", seconds)}, 22);
  };

  print_metric_row("baseline (our)", base_score, 0.0);

  {
    Stopwatch watch;
    ml::Dataset all_data = MaterializeAll(scenario, config, &rng);
    ml::Evaluator evaluator(all_data, config.test_fraction, config.seed);
    double score =
        evaluator.FinalScore(ml::AllFeatureIndices(all_data.NumFeatures()));
    print_metric_row("all features (our)", score, watch.ElapsedSeconds());

    ml::AutoMlConfig automl;
    automl.time_budget_seconds = options.automl_budget_seconds();
    automl.seed = options.seed;
    ml::AutoMlResult result = ml::RunRandomSearchAutoMl(all_data, automl);
    print_metric_row("all features (AutoML)", result.best_score,
                     result.elapsed_seconds);
    ml::Dataset base_data = BaseDataset(scenario, config);
    result = ml::RunRandomSearchAutoMl(base_data, automl);
    print_metric_row("baseline (AutoML)", result.best_score,
                     result.elapsed_seconds);
  }
  {
    Stopwatch watch;
    discovery::TupleRatioFilterResult filtered =
        discovery::FilterByTupleRatio(scenario.repo, scenario.base,
                                      scenario.candidates,
                                      config.tuple_ratio_tau);
    data::Scenario kept = scenario;
    kept.candidates = filtered.kept;
    ml::Dataset tr_data = MaterializeAll(kept, config, &rng);
    ml::Evaluator evaluator(tr_data, config.test_fraction, config.seed);
    double score =
        evaluator.FinalScore(ml::AllFeatureIndices(tr_data.NumFeatures()));
    print_metric_row("TR rule", score, watch.ElapsedSeconds());
  }
  for (const SelectorRunRow& row : rows) {
    print_metric_row(row.method, row.score, row.seconds);
  }
}

}  // namespace
}  // namespace arda::bench

int main(int argc, char** argv) {
  using namespace arda::bench;
  BenchOptions options = ParseOptions(argc, argv);
  std::printf("=== Table 1: feature selectors on real-world scenarios "
              "===\n");
  for (const arda::data::Scenario& scenario :
       arda::data::MakeAllScenarios(options.seed, options.scale())) {
    RunScenario(scenario, options);
  }
  return 0;
}
